// Crash-safe checkpoint layer: payload round-trip properties, the
// double-buffered atomic file pair, and corruption fuzzing (random byte
// flips must always be detected and must always fall back to the other
// slot — the durability contract of core/checkpoint.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "policy/serialization.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "odin_ckpt_" + tag;
}

void remove_slots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A checkpoint with every field populated non-trivially: the controller
/// snapshot comes from a real controller that has served runs, filled its
/// buffer and promoted at least one update.
ServingCheckpoint sample_checkpoint(const ou::MappedModel& tenant) {
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.update_options.epochs = 20;
  OdinController controller(tenant, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  double t = 1.0;
  for (int i = 0; i < 12; ++i, t *= 3.0) controller.run_inference(t);

  ServingCheckpoint ckpt;
  ckpt.segment = 2;
  ckpt.next_run = 41;
  ckpt.segments = 6;
  ckpt.horizon_runs = 120;
  ckpt.t_start_s = 1.0;
  ckpt.t_end_s = 1e8;
  ckpt.tenant_names = {"TinyNet", "OtherNet"};
  ckpt.result.label = "Odin";
  ckpt.result.tenants.resize(2);
  ckpt.result.tenants[0].name = "TinyNet";
  ckpt.result.tenants[0].runs = 41;
  ckpt.result.tenants[0].mismatches = 77;
  ckpt.result.tenants[0].buffer_dropped = 5;
  ckpt.result.tenants[0].inference = {1.25e-3, 3.5e-4};
  ckpt.result.tenants[1].name = "OtherNet";
  ckpt.result.programming = {2.0e-3, 1.0e-4};
  ckpt.result.switches = 3;
  ckpt.result.policy_updates = 4;
  ckpt.result.tenants[0].slo_s = 2e-3;
  ckpt.result.tenants[0].shed_runs = 3;
  ckpt.result.tenants[0].breaker_open_runs = 6;
  ckpt.result.tenants[0].deadline_misses = 9;
  ckpt.result.tenants[0].deferred_reprograms = 2;
  ckpt.result.tenants[0].deadline_stopped_retries = 1;
  ckpt.result.tenants[0].searches_truncated = 40;
  ckpt.result.tenants[0].breaker_opens = 2;
  ckpt.result.tenants[0].breaker_reopens = 1;
  ckpt.result.tenants[0].breaker_probes = 3;
  ckpt.result.tenants[0].breaker_closes = 1;
  ckpt.result.tenants[0].watchdog_stalls = 1;
  ckpt.result.tenants[0].sojourn_s = {3.5e-4, 1.9e-3, 5.5e-3};
  ckpt.result.tenants[0].rows_remapped = 6;
  ckpt.result.tenants[0].crossbars_retired = 1;
  ckpt.result.tenants[0].writes_leveled = 384;
  ckpt.result.tenants[0].wear_deferred_reprograms = 2;
  ckpt.result.tenants[0].spares_remaining = 10;
  ckpt.controller = controller.snapshot();
  ckpt.controller.wear_deferred_reprograms = 2;
  ckpt.controller.retired_seen = 1;
  ckpt.has_faults = true;
  ckpt.wear = {7, 12, 1, 0, 1};
  ckpt.leveling_enabled = true;
  ckpt.leveling_spare_rows = 16;
  ckpt.leveling_wear_budget = 0.8;
  ckpt.wear_seg_base_rows_remapped = 4;
  ckpt.wear_seg_base_crossbars_retired = 1;
  ckpt.wear_seg_base_writes_leveled = 256;
  {  // a real leveled crossbar's wear map, not a hand-rolled one
    reram::WearLevelingParams leveling;
    leveling.enabled = true;
    leveling.spare_rows = 4;
    leveling.row_cycle_budget = 2.0;
    reram::Crossbar xbar(16, reram::DeviceParams{});
    xbar.enable_wear_leveling(leveling);
    const std::vector<double> w(64, 0.5);
    for (int k = 0; k < 7; ++k) xbar.program(w, 8, 8, 1.0 + k);
    ckpt.wear_maps.push_back(xbar.wear_map());
  }
  ckpt.has_resilience = true;
  ckpt.shed_policy = 1;  // kShedOldest
  ckpt.queue_capacity = 8;
  ckpt.busy_until_s = 123.5;
  ckpt.pending_runs = {41, 42};
  CircuitBreaker::Snapshot breaker;
  breaker.state = 1;  // open, mid-hold
  breaker.window_bits = 0b1011;
  breaker.window_fill = 4;
  breaker.hold_left = 2;
  breaker.hold_runs = 4;
  breaker.opens = 2;
  breaker.reopens = 1;
  breaker.probes = 3;
  breaker.closes = 1;
  ckpt.breakers = {breaker, CircuitBreaker::Snapshot{}};
  ckpt.fallback_ous = {{4, 4}, {8, 16}};
  reram::CrossbarHealth health;
  health.ou_rows = 8;
  health.ou_cols = 16;
  health.stuck_cells = 9;
  health.scanned_cells = 4096;
  health.fault_fraction = 9.0 / 4096.0;
  health.windows = {{0, 0, 3}, {8, 16, 6}};
  ckpt.health_maps.push_back(std::move(health));
  // v5 fleet surface: this frame claims to be shard 1 of a 2-shard fleet
  // with a placement-derived service model per tenant.
  ckpt.fleet_shards = 2;
  ckpt.fleet_shard_index = 1;
  ckpt.has_service_models = true;
  ckpt.service_models = {{{1.5e-9, 2.5e-7}, 0.62}, {{0.0, 0.0}, 1.0}};
  ckpt.result.tenants[0].service_s = 4.75e-3;
  ckpt.result.tenants[0].pipelined_runs = 17;
  // v6 scenario surface: bounded sojourn retention (live per-tenant
  // sketches past the cap) plus an embedded mid-campaign state.
  for (int i = 0; i < 9; ++i)
    ckpt.result.tenants[0].sojourn_sketch.add(1e-4 * (i + 1));
  ckpt.result.tenants[0].sojourn_dropped = 11;
  ckpt.sojourn_cap = 64;
  ckpt.has_scenario = true;
  ckpt.scenario.seed = 42;
  ckpt.scenario.requests = 100'000;
  ckpt.scenario.tenants = 2;
  ckpt.scenario.shards = 2;
  ckpt.scenario.epochs = 2;
  ckpt.scenario.autoscale = true;
  ckpt.scenario.next_event = 5'120;
  ckpt.scenario.clock_s = 4'321.0;
  ckpt.scenario.epoch = 1;
  ckpt.scenario.storms_fired = 1;
  ckpt.scenario.rescales = 3;
  ckpt.scenario.migrations = 7;
  ckpt.scenario.storm_campaigns_fired = 8;
  ckpt.scenario.misses = 12;
  ckpt.scenario.sheds = 2;
  ckpt.scenario.flash_requests = 640;
  ckpt.scenario.energy_j = 0.75;
  ckpt.scenario.edp_sum = 1.5e-3;
  ckpt.scenario.migration_s = 1.4e-2;
  ckpt.scenario.migration_energy_j = 3.5e-3;
  ckpt.scenario.shard_busy_until_s = {4300.0, 4400.5};
  ckpt.scenario.shard_pes = {20, 16};
  ckpt.scenario.tenant_shard = {0, 1};
  ckpt.scenario.shard_demand = {12.5, 3.25};
  ckpt.scenario.tenant_demand = {10.0, 5.75};
  ckpt.scenario.shard_wear = {{3, 5, 1, 0, 0}, {1, 2, 0, 1, 0}};
  ckpt.scenario.storm_shard_mask = {0b01};
  for (int i = 0; i < 25; ++i) {
    const double slack = 1e-3 * (i - 4);
    ckpt.scenario.slack_p1.add(slack);
    ckpt.scenario.flash_slack_p1.add(slack * 0.5);
    ckpt.scenario.tier_slack_p1[i % 3].add(slack);
    ckpt.scenario.sojourn.add(1e-3 * (i + 1));
  }
  ckpt.scenario.epoch_energy_j = {0.5, 0.25};
  ckpt.scenario.epoch_edp_sum = {1e-3, 5e-4};
  ckpt.scenario.epoch_requests = {3'000, 2'120};
  ckpt.scenario.epoch_misses = {9, 3};
  ckpt.scenario.epoch_sheds = {2, 0};
  ckpt.scenario.epoch_slack_p1.resize(2, QuantileSketch(0.01));
  ckpt.scenario.epoch_slack_p1[0].add(2e-3);
  // v7 cluster surface: per-tenant failover counters plus an embedded
  // mid-failover cluster state (mesh 0 dark, tenant 0 evacuated).
  ckpt.result.tenants[0].failovers = 1;
  ckpt.result.tenants[0].restored_stale = 1;
  ckpt.result.tenants[0].lost_runs = 13;
  ckpt.result.tenants[0].outage_dropped = 4;
  ckpt.result.tenants[0].rpo_s = 321.5;
  ckpt.result.tenants[0].rto_s = 44.25;
  ckpt.has_cluster = true;
  ckpt.cluster.meshes = 2;
  ckpt.cluster.replication_epochs = 4;
  ckpt.cluster.failover = true;
  ckpt.cluster.outages_fired = 1;
  ckpt.cluster.replication_rounds = 3;
  ckpt.cluster.mesh_down = {1, 0};
  ckpt.cluster.mesh_down_until_s = {5000.0, 0.0};
  ckpt.cluster.mesh_served = {1200, 3400};
  ckpt.cluster.replica_runs = {40, 25};
  ckpt.cluster.replica_time_s = {2880.0, 2880.0};
  ckpt.cluster.replica_mesh = {1, 0};
  ckpt.cluster.tenant_ready_s = {4321.5, 0.0};
  ckpt.cluster.tenant_victim = {1, 0};
  ckpt.cluster.breakers = {breaker, CircuitBreaker::Snapshot{}};
  ckpt.cluster.failovers = 1;
  ckpt.cluster.restored_stale = 1;
  ckpt.cluster.lost_runs = 13;
  ckpt.cluster.outage_dropped = 4;
  ckpt.cluster.degraded_runs = 6;
  ckpt.cluster.bootstrap_campaigns = 1;
  ckpt.cluster.victim_offered = 20;
  ckpt.cluster.victim_served = 19;
  ckpt.cluster.rto_max_s = 44.25;
  ckpt.cluster.rto_sum_s = 44.25;
  ckpt.cluster.rpo_max_s = 321.5;
  ckpt.cluster.rpo_sum_s = 321.5;
  ckpt.cluster.replication_bytes = 8192.0;
  ckpt.cluster.replication_s = 2.1e-6;
  ckpt.cluster.replication_energy_j = 1.6e-7;
  return ckpt;
}

TEST(Checkpoint, PayloadRoundTripIsExact) {
  const auto tenant = testing::tiny_mapped();
  const ServingCheckpoint ckpt = sample_checkpoint(tenant);

  common::ByteWriter encoded;
  encode_checkpoint(ckpt, encoded);
  common::ByteReader reader(encoded.bytes());
  const auto decoded = decode_checkpoint(reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(reader.exhausted());

  // Spot-check the fields a resume depends on...
  EXPECT_EQ(decoded->segment, 2u);
  EXPECT_EQ(decoded->next_run, 41u);
  EXPECT_EQ(decoded->tenant_names, ckpt.tenant_names);
  EXPECT_TRUE(decoded->result.resumed);
  EXPECT_EQ(decoded->result.tenants[0].mismatches, 77);
  EXPECT_EQ(decoded->wear.campaigns, 7);
  ASSERT_EQ(decoded->health_maps.size(), 1u);
  EXPECT_EQ(decoded->health_maps[0].windows.size(), 2u);
  EXPECT_EQ(decoded->controller.buffer_entries, ckpt.controller.buffer_entries);
  EXPECT_EQ(decoded->controller.policy_blob, ckpt.controller.policy_blob);
  EXPECT_TRUE(decoded->has_resilience);
  EXPECT_EQ(decoded->queue_capacity, 8u);
  EXPECT_EQ(decoded->pending_runs, ckpt.pending_runs);
  ASSERT_EQ(decoded->breakers.size(), 2u);
  EXPECT_EQ(decoded->breakers[0].window_bits, 0b1011u);
  EXPECT_EQ(decoded->breakers[0].hold_left, 2);
  ASSERT_EQ(decoded->fallback_ous.size(), 2u);
  EXPECT_EQ(decoded->fallback_ous[1].cols, 16);
  EXPECT_EQ(decoded->result.tenants[0].sojourn_s, ckpt.result.tenants[0].sojourn_s);
  EXPECT_EQ(decoded->result.tenants[0].deadline_misses, 9);
  // v4 wear-leveling surface.
  EXPECT_TRUE(decoded->leveling_enabled);
  EXPECT_EQ(decoded->leveling_spare_rows, 16);
  EXPECT_EQ(decoded->leveling_wear_budget, 0.8);
  EXPECT_EQ(decoded->wear.crossbars_retired, 1);
  EXPECT_EQ(decoded->wear_seg_base_rows_remapped, 4);
  EXPECT_EQ(decoded->wear_seg_base_writes_leveled, 256);
  EXPECT_EQ(decoded->controller.wear_deferred_reprograms, 2);
  EXPECT_EQ(decoded->controller.retired_seen, 1);
  EXPECT_EQ(decoded->result.tenants[0].rows_remapped, 6);
  EXPECT_EQ(decoded->result.tenants[0].spares_remaining, 10);
  ASSERT_EQ(decoded->wear_maps.size(), 1u);
  EXPECT_EQ(decoded->wear_maps[0].rows, ckpt.wear_maps[0].rows);
  EXPECT_EQ(decoded->wear_maps[0].row_writes, ckpt.wear_maps[0].row_writes);
  EXPECT_EQ(decoded->wear_maps[0].remap, ckpt.wear_maps[0].remap);
  // v5 fleet surface.
  EXPECT_EQ(decoded->fleet_shards, 2);
  EXPECT_EQ(decoded->fleet_shard_index, 1);
  EXPECT_TRUE(decoded->has_service_models);
  ASSERT_EQ(decoded->service_models.size(), 2u);
  EXPECT_EQ(decoded->service_models[0].noc_extra.energy_j, 1.5e-9);
  EXPECT_EQ(decoded->service_models[0].noc_extra.latency_s, 2.5e-7);
  EXPECT_EQ(decoded->service_models[0].pipeline_overlap, 0.62);
  EXPECT_EQ(decoded->service_models[1].pipeline_overlap, 1.0);
  EXPECT_EQ(decoded->result.tenants[0].service_s, 4.75e-3);
  EXPECT_EQ(decoded->result.tenants[0].pipelined_runs, 17);
  // v6 scenario surface.
  EXPECT_EQ(decoded->sojourn_cap, 64u);
  EXPECT_EQ(decoded->result.tenants[0].sojourn_dropped, 11);
  EXPECT_TRUE(decoded->result.tenants[0].sojourn_sketch ==
              ckpt.result.tenants[0].sojourn_sketch);
  EXPECT_TRUE(decoded->has_scenario);
  EXPECT_EQ(decoded->scenario.seed, 42u);
  EXPECT_EQ(decoded->scenario.next_event, 5'120u);
  EXPECT_EQ(decoded->scenario.clock_s, 4'321.0);
  EXPECT_EQ(decoded->scenario.shard_pes, ckpt.scenario.shard_pes);
  EXPECT_EQ(decoded->scenario.storm_shard_mask, ckpt.scenario.storm_shard_mask);
  EXPECT_TRUE(decoded->scenario.slack_p1 == ckpt.scenario.slack_p1);
  EXPECT_TRUE(decoded->scenario.sojourn == ckpt.scenario.sojourn);
  ASSERT_EQ(decoded->scenario.epoch_slack_p1.size(), 2u);
  EXPECT_TRUE(decoded->scenario.epoch_slack_p1[0] ==
              ckpt.scenario.epoch_slack_p1[0]);
  // v7 cluster surface.
  EXPECT_TRUE(decoded->has_cluster);
  EXPECT_EQ(decoded->cluster.meshes, 2);
  EXPECT_EQ(decoded->cluster.outages_fired, 1);
  EXPECT_EQ(decoded->cluster.mesh_down, ckpt.cluster.mesh_down);
  EXPECT_EQ(decoded->cluster.replica_runs, ckpt.cluster.replica_runs);
  EXPECT_EQ(decoded->cluster.tenant_victim, ckpt.cluster.tenant_victim);
  ASSERT_EQ(decoded->cluster.breakers.size(), 2u);
  EXPECT_EQ(decoded->cluster.breakers[0].window_bits, 0b1011u);
  EXPECT_EQ(decoded->cluster.rpo_max_s, 321.5);
  EXPECT_EQ(decoded->cluster.replication_bytes, 8192.0);
  EXPECT_EQ(decoded->result.tenants[0].failovers, 1);
  EXPECT_EQ(decoded->result.tenants[0].restored_stale, 1);
  EXPECT_EQ(decoded->result.tenants[0].lost_runs, 13);
  EXPECT_EQ(decoded->result.tenants[0].outage_dropped, 4);
  EXPECT_EQ(decoded->result.tenants[0].rpo_s, 321.5);
  EXPECT_EQ(decoded->result.tenants[0].rto_s, 44.25);
  // ...then pin full equality through the codec itself: re-encoding the
  // decoded checkpoint must reproduce the identical byte stream.
  common::ByteWriter reencoded;
  encode_checkpoint(*decoded, reencoded);
  EXPECT_EQ(encoded.bytes(), reencoded.bytes());
}

TEST(Checkpoint, TruncatedPayloadIsRejectedNotCrashed) {
  const auto tenant = testing::tiny_mapped();
  common::ByteWriter encoded;
  encode_checkpoint(sample_checkpoint(tenant), encoded);
  // Every strict prefix must decode to nullopt (fail-soft reader).
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          encoded.bytes().size() / 2,
                          encoded.bytes().size() - 1}) {
    common::ByteReader reader(
        std::string_view(encoded.bytes()).substr(0, cut));
    EXPECT_FALSE(decode_checkpoint(reader).has_value()) << "cut=" << cut;
  }
}

TEST(Checkpoint, PolicyBlobRoundTripsThroughBinarySerialization) {
  policy::OuPolicy policy{ou::OuLevelGrid(128)};
  common::ByteWriter out;
  policy::save_policy_binary(policy, out);
  common::ByteReader in(out.bytes());
  auto restored = policy::load_policy_binary(in);
  ASSERT_TRUE(restored.has_value());
  // Same parameters => same predictions everywhere we probe.
  for (double s : {0.0, 0.3, 0.9}) {
    policy::Features f{0.5, s, 0.6, 0.4};
    EXPECT_EQ(restored->predict(f), policy.predict(f));
  }
}

TEST(Checkpoint, WriterAlternatesSlotsAndSequencesSurviveRestart) {
  const std::string base = temp_base("writer");
  remove_slots(base);
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  {
    CheckpointWriter writer(base);
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_EQ(ckpt.sequence, 1u);
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_EQ(writer.last_sequence(), 3u);
  }
  // Both slots exist; the pair's newest is sequence 3.
  ASSERT_FALSE(read_file(base + ".a").empty());
  ASSERT_FALSE(read_file(base + ".b").empty());
  const auto latest = load_latest_checkpoint(base);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 3u);
  // A new writer (process restart) continues the sequence — it must never
  // reuse a number or overwrite the newest slot first.
  CheckpointWriter writer2(base);
  EXPECT_EQ(writer2.last_sequence(), 3u);
  EXPECT_TRUE(writer2.write(ckpt));
  EXPECT_EQ(ckpt.sequence, 4u);
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 4u);
  remove_slots(base);
}

TEST(Checkpoint, CorruptionFuzzEveryByteFlipFallsBackToOtherSlot) {
  const std::string base = temp_base("fuzz");
  remove_slots(base);
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  CheckpointWriter writer(base);
  ASSERT_TRUE(writer.write(ckpt));  // seq 1 -> .a
  ASSERT_TRUE(writer.write(ckpt));  // seq 2 -> .b
  const std::string newest = base + ".b";
  const std::string pristine = read_file(newest);
  ASSERT_FALSE(pristine.empty());

  common::Rng rng(0xfa11);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = pristine;
    const auto pos = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(corrupt.size()));
    const int bit = static_cast<int>(rng.uniform() * 8.0);
    corrupt[pos % corrupt.size()] ^= static_cast<char>(1 << (bit % 8));
    write_file(newest, corrupt);
    // The flipped slot must be detected (header checks or CRC) and the
    // loader must fall back to the older-but-valid slot. No crash, ever.
    EXPECT_FALSE(load_checkpoint_file(newest).has_value())
        << "undetected flip at byte " << pos;
    const auto fallback = load_latest_checkpoint(base);
    ASSERT_TRUE(fallback.has_value());
    EXPECT_EQ(fallback->sequence, 1u);
  }
  // Torn write (truncation) is detected the same way.
  write_file(newest, pristine.substr(0, pristine.size() / 2));
  EXPECT_FALSE(load_checkpoint_file(newest).has_value());
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 1u);
  // Restoring the pristine bytes restores the newest checkpoint.
  write_file(newest, pristine);
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 2u);
  remove_slots(base);
}

TEST(Checkpoint, BothSlotsCorruptMeansNulloptNotCrash) {
  const std::string base = temp_base("allbad");
  remove_slots(base);
  write_file(base + ".a", "definitely not a checkpoint");
  write_file(base + ".b", std::string(200, '\0'));
  EXPECT_FALSE(load_latest_checkpoint(base).has_value());
  remove_slots(base);
}

/// A minimal-but-complete *version 1* payload, written field by field
/// against the layout v1 shipped with (no resilience fields anywhere).
/// Exists so a layout drift in the decoder's v1 path is caught even after
/// every writer in the tree moved on to v2.
std::string v1_payload() {
  common::ByteWriter out;
  out.u64(2);       // segment
  out.u64(41);      // next_run
  out.i32(6);       // segments
  out.i32(120);     // horizon_runs
  out.f64(1.0);     // t_start_s
  out.f64(1e8);     // t_end_s
  out.u64(1);       // tenant_names
  out.str("TinyNet");
  out.str("Odin");  // result.label
  out.u64(1);       // result.tenants
  {                 // one v1 tenant record
    out.str("TinyNet");
    out.i32(41);   // runs
    out.i32(3);    // reprograms
    out.i32(77);   // mismatches
    out.i32(2);    // retries
    out.i32(1);    // degraded_runs
    out.i32(4);    // updates_accepted
    out.i32(0);    // updates_rejected
    out.i32(0);    // updates_rolled_back
    out.i64(5);    // buffer_dropped
    out.i64(0);    // buffer_quarantined
    out.f64(1.25e-3);  // inference energy/latency
    out.f64(3.5e-4);
    out.f64(4.0e-3);  // reprogram energy/latency
    out.f64(9.0e-4);
  }
  out.f64(2.0e-3);  // programming energy/latency
  out.f64(1.0e-4);
  out.i32(3);  // switches
  out.i32(4);  // policy_updates
  {            // controller snapshot
    out.f64(12.5);    // programmed_at_s
    out.i32(3);       // reprogram_count
    out.i32(4);       // update_count
    out.f64(1.0);     // health_fraction
    out.boolean(false);
    out.f64(1.0);     // eta_scale
    out.i32(2);       // retry_count
    out.i32(1);       // degraded_runs
    out.i32(4);       // updates_accepted
    out.i32(0);       // updates_rejected
    out.i32(0);       // updates_rolled_back
    out.i32(0);       // probation_left
    out.i64(0);       // probation_mismatches
    out.i64(0);       // probation_layers
    out.f64(0.0);     // pre_update_rate
    out.f64(0.0);     // mismatch_rate_ema
    out.u64(0);       // buffer_entries
    out.u64(0);       // buffer_quarantine
    out.u64(0);       // last_update_batch
    out.u64(5);       // buffer_dropped
    out.u64(0);       // buffer_quarantine_hits
    out.str("");      // policy_blob
    out.str("");      // last_good_blob
  }
  out.boolean(false);  // has_faults
  out.i32(0);          // wear x4
  out.i32(0);
  out.i32(0);
  out.i32(0);
  out.u64(0);  // health_maps
  return out.bytes();
}

/// Frame a payload the way write_frame does, but with a caller-chosen
/// version number (write_frame always stamps the current one).
std::string frame_with_version(std::uint32_t version, std::uint64_t sequence,
                               const std::string& payload) {
  common::ByteWriter meta;
  meta.u64(sequence);
  meta.u64(payload.size());
  const std::uint32_t seed =
      common::crc32(meta.bytes().data(), meta.bytes().size());
  const std::uint32_t crc = common::crc32(payload.data(), payload.size(), seed);
  common::ByteWriter header;
  for (char m : {'O', 'D', 'I', 'N', 'C', 'K', 'P', 'T'})
    header.u8(static_cast<std::uint8_t>(m));
  header.u32(version);
  header.u64(sequence);
  header.u64(payload.size());
  header.u32(crc);
  return header.bytes() + payload;
}

TEST(Checkpoint, Version1FrameDecodesWithResilienceDefaults) {
  const std::string path = temp_base("v1frame") + ".a";
  write_file(path, frame_with_version(1, 9, v1_payload()));
  const auto ckpt = load_checkpoint_file(path);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->sequence, 9u);
  // The v1 fields decode as written...
  EXPECT_EQ(ckpt->segment, 2u);
  EXPECT_EQ(ckpt->next_run, 41u);
  EXPECT_EQ(ckpt->tenant_names, std::vector<std::string>{"TinyNet"});
  ASSERT_EQ(ckpt->result.tenants.size(), 1u);
  EXPECT_EQ(ckpt->result.tenants[0].mismatches, 77);
  EXPECT_EQ(ckpt->controller.update_count, 4);
  // ...and every field v1 predates comes back in the resilience-disabled
  // default state: the walk resumes exactly as a pre-resilience build
  // would have resumed it.
  EXPECT_FALSE(ckpt->has_resilience);
  EXPECT_EQ(ckpt->queue_capacity, 0u);
  EXPECT_EQ(ckpt->busy_until_s, 0.0);
  EXPECT_TRUE(ckpt->pending_runs.empty());
  EXPECT_TRUE(ckpt->breakers.empty());
  EXPECT_TRUE(ckpt->fallback_ous.empty());
  EXPECT_EQ(ckpt->result.tenants[0].slo_s, 0.0);
  EXPECT_EQ(ckpt->result.tenants[0].shed_runs, 0);
  EXPECT_EQ(ckpt->result.tenants[0].deadline_misses, 0);
  EXPECT_TRUE(ckpt->result.tenants[0].sojourn_s.empty());
  std::remove(path.c_str());
}

/// A minimal *version 3* payload: the v1 layout plus the v2 resilience
/// fields and the v3 batching fingerprint, ending exactly where v3 ended —
/// no wear-leveling tail. Pins the decoder's pre-v4 path.
std::string v3_payload() {
  common::ByteWriter out;
  out.u64(2);       // segment
  out.u64(41);      // next_run
  out.i32(6);       // segments
  out.i32(120);     // horizon_runs
  out.f64(1.0);     // t_start_s
  out.f64(1e8);     // t_end_s
  out.u64(1);       // tenant_names
  out.str("TinyNet");
  out.str("Odin");  // result.label
  out.u64(1);       // result.tenants
  {                 // one v3 tenant record
    out.str("TinyNet");
    out.i32(41);   // runs
    out.i32(3);    // reprograms
    out.i32(77);   // mismatches
    out.i32(2);    // retries
    out.i32(1);    // degraded_runs
    out.i32(4);    // updates_accepted
    out.i32(0);    // updates_rejected
    out.i32(0);    // updates_rolled_back
    out.i64(5);    // buffer_dropped
    out.i64(0);    // buffer_quarantined
    out.f64(1.25e-3);  // inference energy/latency
    out.f64(3.5e-4);
    out.f64(4.0e-3);  // reprogram energy/latency
    out.f64(9.0e-4);
    out.f64(0.0);  // v2: slo_s
    out.i32(0);    // shed_runs
    out.i32(0);    // breaker_open_runs
    out.i32(0);    // deadline_misses
    out.i32(0);    // deferred_reprograms
    out.i32(0);    // deadline_stopped_retries
    out.i32(0);    // searches_truncated
    out.i32(0);    // breaker_opens
    out.i32(0);    // breaker_reopens
    out.i32(0);    // breaker_probes
    out.i32(0);    // breaker_closes
    out.i32(0);    // watchdog_stalls
    out.u64(0);    // sojourn samples
    out.i32(0);    // v3: batches_formed
    out.i32(0);    // batch_members
    out.i32(0);    // max_batch
    out.i32(0);    // batch_slo_capped
  }
  out.f64(2.0e-3);  // programming energy/latency
  out.f64(1.0e-4);
  out.i32(3);  // switches
  out.i32(4);  // policy_updates
  {            // controller snapshot (unversioned, same as v1)
    out.f64(12.5);    // programmed_at_s
    out.i32(3);       // reprogram_count
    out.i32(4);       // update_count
    out.f64(1.0);     // health_fraction
    out.boolean(false);
    out.f64(1.0);     // eta_scale
    out.i32(2);       // retry_count
    out.i32(1);       // degraded_runs
    out.i32(4);       // updates_accepted
    out.i32(0);       // updates_rejected
    out.i32(0);       // updates_rolled_back
    out.i32(0);       // probation_left
    out.i64(0);       // probation_mismatches
    out.i64(0);       // probation_layers
    out.f64(0.0);     // pre_update_rate
    out.f64(0.0);     // mismatch_rate_ema
    out.u64(0);       // buffer_entries
    out.u64(0);       // buffer_quarantine
    out.u64(0);       // last_update_batch
    out.u64(5);       // buffer_dropped
    out.u64(0);       // buffer_quarantine_hits
    out.str("");      // policy_blob
    out.str("");      // last_good_blob
  }
  out.boolean(true);  // has_faults
  out.i32(7);         // wear: campaigns
  out.i32(12);        // stuck_cells
  out.i32(1);         // failed_wordlines
  out.i32(0);         // failed_bitlines
  out.u64(0);         // health_maps
  out.boolean(false);  // v2: has_resilience
  out.i32(0);          // shed_policy
  out.u64(0);          // queue_capacity
  out.f64(0.0);        // busy_until_s
  out.u64(0);          // pending_runs
  out.u64(0);          // breakers
  out.u64(0);          // fallback_ous
  out.boolean(false);  // v3: batching_enabled
  out.i32(0);          // batch_cap
  return out.bytes();
}

TEST(Checkpoint, Version3FrameDecodesWithEmptyWearMaps) {
  const std::string path = temp_base("v3wear") + ".a";
  write_file(path, frame_with_version(3, 9, v3_payload()));
  const auto ckpt = load_checkpoint_file(path);
  ASSERT_TRUE(ckpt.has_value());
  // The v3 fields decode as written...
  EXPECT_EQ(ckpt->segment, 2u);
  EXPECT_TRUE(ckpt->has_faults);
  EXPECT_EQ(ckpt->wear.campaigns, 7);
  // ...and the whole wear-leveling surface comes back in the
  // feature-disabled state a pre-leveling build would have resumed with:
  // leveling off, retirement count zero, empty wear maps.
  EXPECT_FALSE(ckpt->leveling_enabled);
  EXPECT_EQ(ckpt->leveling_spare_rows, 0);
  EXPECT_EQ(ckpt->leveling_wear_budget, 0.0);
  EXPECT_EQ(ckpt->wear.crossbars_retired, 0);
  EXPECT_EQ(ckpt->wear_seg_base_rows_remapped, 0);
  EXPECT_EQ(ckpt->wear_seg_base_crossbars_retired, 0);
  EXPECT_EQ(ckpt->wear_seg_base_writes_leveled, 0);
  EXPECT_EQ(ckpt->controller.wear_deferred_reprograms, 0);
  EXPECT_EQ(ckpt->controller.retired_seen, 0);
  EXPECT_TRUE(ckpt->wear_maps.empty());
  EXPECT_EQ(ckpt->result.tenants[0].rows_remapped, 0);
  EXPECT_EQ(ckpt->result.tenants[0].crossbars_retired, 0);
  EXPECT_EQ(ckpt->result.tenants[0].writes_leveled, 0);
  EXPECT_EQ(ckpt->result.tenants[0].spares_remaining, 0);
  std::remove(path.c_str());
}

/// A minimal *version 4* payload: the v3 layout plus the wear-leveling
/// tails, ending exactly where v4 ended — no fleet surface. Pins the
/// decoder's pre-fleet path: a frame written by a single-shard build must
/// resume as shard 0 of a 1-shard fleet with no service models.
std::string v4_payload() {
  common::ByteWriter out;
  out.u64(2);       // segment
  out.u64(41);      // next_run
  out.i32(6);       // segments
  out.i32(120);     // horizon_runs
  out.f64(1.0);     // t_start_s
  out.f64(1e8);     // t_end_s
  out.u64(1);       // tenant_names
  out.str("TinyNet");
  out.str("Odin");  // result.label
  out.u64(1);       // result.tenants
  {                 // one v4 tenant record
    out.str("TinyNet");
    out.i32(41);   // runs
    out.i32(3);    // reprograms
    out.i32(77);   // mismatches
    out.i32(2);    // retries
    out.i32(1);    // degraded_runs
    out.i32(4);    // updates_accepted
    out.i32(0);    // updates_rejected
    out.i32(0);    // updates_rolled_back
    out.i64(5);    // buffer_dropped
    out.i64(0);    // buffer_quarantined
    out.f64(1.25e-3);  // inference energy/latency
    out.f64(3.5e-4);
    out.f64(4.0e-3);  // reprogram energy/latency
    out.f64(9.0e-4);
    out.f64(0.0);  // v2: slo_s
    out.i32(0);    // shed_runs
    out.i32(0);    // breaker_open_runs
    out.i32(0);    // deadline_misses
    out.i32(0);    // deferred_reprograms
    out.i32(0);    // deadline_stopped_retries
    out.i32(0);    // searches_truncated
    out.i32(0);    // breaker_opens
    out.i32(0);    // breaker_reopens
    out.i32(0);    // breaker_probes
    out.i32(0);    // breaker_closes
    out.i32(0);    // watchdog_stalls
    out.u64(0);    // sojourn samples
    out.i32(0);    // v3: batches_formed
    out.i32(0);    // batch_members
    out.i32(0);    // max_batch
    out.i32(0);    // batch_slo_capped
    out.i32(6);    // v4: rows_remapped
    out.i32(1);    // crossbars_retired
    out.i64(384);  // writes_leveled
    out.i32(2);    // wear_deferred_reprograms
    out.i32(10);   // spares_remaining
  }
  out.f64(2.0e-3);  // programming energy/latency
  out.f64(1.0e-4);
  out.i32(3);  // switches
  out.i32(4);  // policy_updates
  {            // controller snapshot (unversioned, same as v1)
    out.f64(12.5);    // programmed_at_s
    out.i32(3);       // reprogram_count
    out.i32(4);       // update_count
    out.f64(1.0);     // health_fraction
    out.boolean(false);
    out.f64(1.0);     // eta_scale
    out.i32(2);       // retry_count
    out.i32(1);       // degraded_runs
    out.i32(4);       // updates_accepted
    out.i32(0);       // updates_rejected
    out.i32(0);       // updates_rolled_back
    out.i32(0);       // probation_left
    out.i64(0);       // probation_mismatches
    out.i64(0);       // probation_layers
    out.f64(0.0);     // pre_update_rate
    out.f64(0.0);     // mismatch_rate_ema
    out.u64(0);       // buffer_entries
    out.u64(0);       // buffer_quarantine
    out.u64(0);       // last_update_batch
    out.u64(5);       // buffer_dropped
    out.u64(0);       // buffer_quarantine_hits
    out.str("");      // policy_blob
    out.str("");      // last_good_blob
  }
  out.boolean(true);  // has_faults
  out.i32(7);         // wear: campaigns
  out.i32(12);        // stuck_cells
  out.i32(1);         // failed_wordlines
  out.i32(0);         // failed_bitlines
  out.u64(0);         // health_maps
  out.boolean(false);  // v2: has_resilience
  out.i32(0);          // shed_policy
  out.u64(0);          // queue_capacity
  out.f64(0.0);        // busy_until_s
  out.u64(0);          // pending_runs
  out.u64(0);          // breakers
  out.u64(0);          // fallback_ous
  out.boolean(false);  // v3: batching_enabled
  out.i32(0);          // batch_cap
  out.boolean(true);   // v4: leveling_enabled
  out.i32(16);         // leveling_spare_rows
  out.f64(0.8);        // leveling_wear_budget
  out.i32(1);          // wear.crossbars_retired
  out.i32(4);          // wear_seg_base_rows_remapped
  out.i32(1);          // wear_seg_base_crossbars_retired
  out.i64(256);        // wear_seg_base_writes_leveled
  out.i32(2);          // controller.wear_deferred_reprograms
  out.i32(1);          // controller.retired_seen
  out.u64(0);          // wear_maps
  return out.bytes();
}

TEST(Checkpoint, Version4FrameDecodesAsSingleShardFleet) {
  const std::string path = temp_base("v4fleet") + ".a";
  write_file(path, frame_with_version(4, 9, v4_payload()));
  const auto ckpt = load_checkpoint_file(path);
  ASSERT_TRUE(ckpt.has_value());
  // The v4 fields decode as written...
  EXPECT_EQ(ckpt->segment, 2u);
  EXPECT_TRUE(ckpt->leveling_enabled);
  EXPECT_EQ(ckpt->leveling_spare_rows, 16);
  EXPECT_EQ(ckpt->wear.crossbars_retired, 1);
  EXPECT_EQ(ckpt->result.tenants[0].rows_remapped, 6);
  EXPECT_EQ(ckpt->result.tenants[0].spares_remaining, 10);
  // ...and the fleet surface comes back in the single-shard default state:
  // a pre-fleet frame is shard 0 of a 1-shard fleet with no service
  // models, so resume_with_odin accepts it for the plain serving loop and
  // resume_fleet refuses to graft it onto a multi-shard campaign.
  EXPECT_EQ(ckpt->fleet_shards, 1);
  EXPECT_EQ(ckpt->fleet_shard_index, 0);
  EXPECT_FALSE(ckpt->has_service_models);
  EXPECT_TRUE(ckpt->service_models.empty());
  EXPECT_EQ(ckpt->result.tenants[0].service_s, 0.0);
  EXPECT_EQ(ckpt->result.tenants[0].pipelined_runs, 0);
  std::remove(path.c_str());
}

/// A minimal *version 5* payload: the v4 layout plus the fleet surface,
/// ending exactly where v5 ended — no scenario tail. Pins the decoder's
/// pre-scenario path: a frame written before the campaign engine existed
/// must resume with sojourn retention uncapped and no embedded campaign.
std::string v5_payload() {
  common::ByteWriter out;
  out.u64(2);       // segment
  out.u64(41);      // next_run
  out.i32(6);       // segments
  out.i32(120);     // horizon_runs
  out.f64(1.0);     // t_start_s
  out.f64(1e8);     // t_end_s
  out.u64(1);       // tenant_names
  out.str("TinyNet");
  out.str("Odin");  // result.label
  out.u64(1);       // result.tenants
  {                 // one v5 tenant record
    out.str("TinyNet");
    out.i32(41);   // runs
    out.i32(3);    // reprograms
    out.i32(77);   // mismatches
    out.i32(2);    // retries
    out.i32(1);    // degraded_runs
    out.i32(4);    // updates_accepted
    out.i32(0);    // updates_rejected
    out.i32(0);    // updates_rolled_back
    out.i64(5);    // buffer_dropped
    out.i64(0);    // buffer_quarantined
    out.f64(1.25e-3);  // inference energy/latency
    out.f64(3.5e-4);
    out.f64(4.0e-3);  // reprogram energy/latency
    out.f64(9.0e-4);
    out.f64(0.0);  // v2: slo_s
    out.i32(0);    // shed_runs
    out.i32(0);    // breaker_open_runs
    out.i32(0);    // deadline_misses
    out.i32(0);    // deferred_reprograms
    out.i32(0);    // deadline_stopped_retries
    out.i32(0);    // searches_truncated
    out.i32(0);    // breaker_opens
    out.i32(0);    // breaker_reopens
    out.i32(0);    // breaker_probes
    out.i32(0);    // breaker_closes
    out.i32(0);    // watchdog_stalls
    out.u64(2);    // sojourn samples
    out.f64(3.5e-4);
    out.f64(1.9e-3);
    out.i32(0);    // v3: batches_formed
    out.i32(0);    // batch_members
    out.i32(0);    // max_batch
    out.i32(0);    // batch_slo_capped
    out.i32(6);    // v4: rows_remapped
    out.i32(1);    // crossbars_retired
    out.i64(384);  // writes_leveled
    out.i32(2);    // wear_deferred_reprograms
    out.i32(10);   // spares_remaining
    out.f64(4.75e-3);  // v5: service_s
    out.i32(17);       // pipelined_runs
  }
  out.f64(2.0e-3);  // programming energy/latency
  out.f64(1.0e-4);
  out.i32(3);  // switches
  out.i32(4);  // policy_updates
  {            // controller snapshot (unversioned, same as v1)
    out.f64(12.5);    // programmed_at_s
    out.i32(3);       // reprogram_count
    out.i32(4);       // update_count
    out.f64(1.0);     // health_fraction
    out.boolean(false);
    out.f64(1.0);     // eta_scale
    out.i32(2);       // retry_count
    out.i32(1);       // degraded_runs
    out.i32(4);       // updates_accepted
    out.i32(0);       // updates_rejected
    out.i32(0);       // updates_rolled_back
    out.i32(0);       // probation_left
    out.i64(0);       // probation_mismatches
    out.i64(0);       // probation_layers
    out.f64(0.0);     // pre_update_rate
    out.f64(0.0);     // mismatch_rate_ema
    out.u64(0);       // buffer_entries
    out.u64(0);       // buffer_quarantine
    out.u64(0);       // last_update_batch
    out.u64(5);       // buffer_dropped
    out.u64(0);       // buffer_quarantine_hits
    out.str("");      // policy_blob
    out.str("");      // last_good_blob
  }
  out.boolean(true);  // has_faults
  out.i32(7);         // wear: campaigns
  out.i32(12);        // stuck_cells
  out.i32(1);         // failed_wordlines
  out.i32(0);         // failed_bitlines
  out.u64(0);         // health_maps
  out.boolean(false);  // v2: has_resilience
  out.i32(0);          // shed_policy
  out.u64(0);          // queue_capacity
  out.f64(0.0);        // busy_until_s
  out.u64(0);          // pending_runs
  out.u64(0);          // breakers
  out.u64(0);          // fallback_ous
  out.boolean(false);  // v3: batching_enabled
  out.i32(0);          // batch_cap
  out.boolean(true);   // v4: leveling_enabled
  out.i32(16);         // leveling_spare_rows
  out.f64(0.8);        // leveling_wear_budget
  out.i32(1);          // wear.crossbars_retired
  out.i32(4);          // wear_seg_base_rows_remapped
  out.i32(1);          // wear_seg_base_crossbars_retired
  out.i64(256);        // wear_seg_base_writes_leveled
  out.i32(2);          // controller.wear_deferred_reprograms
  out.i32(1);          // controller.retired_seen
  out.u64(0);          // wear_maps
  out.i32(2);          // v5: fleet_shards
  out.i32(1);          // fleet_shard_index
  out.boolean(true);   // has_service_models
  out.u64(1);          // service_models
  out.f64(1.5e-9);     // noc_extra.energy_j
  out.f64(2.5e-7);     // noc_extra.latency_s
  out.f64(0.62);       // pipeline_overlap
  return out.bytes();
}

TEST(Checkpoint, Version5FrameDecodesWithScenarioDefaults) {
  const std::string path = temp_base("v5scenario") + ".a";
  write_file(path, frame_with_version(5, 9, v5_payload()));
  const auto ckpt = load_checkpoint_file(path);
  ASSERT_TRUE(ckpt.has_value());
  // The v5 fields decode as written...
  EXPECT_EQ(ckpt->segment, 2u);
  EXPECT_EQ(ckpt->fleet_shards, 2);
  EXPECT_EQ(ckpt->fleet_shard_index, 1);
  ASSERT_EQ(ckpt->service_models.size(), 1u);
  EXPECT_EQ(ckpt->service_models[0].pipeline_overlap, 0.62);
  ASSERT_EQ(ckpt->result.tenants.size(), 1u);
  EXPECT_EQ(ckpt->result.tenants[0].service_s, 4.75e-3);
  EXPECT_EQ(ckpt->result.tenants[0].pipelined_runs, 17);
  // ...and the scenario surface comes back in the pre-campaign default
  // state: retention uncapped (the vector holds every sample, so the
  // sketch fallback never triggers), no embedded campaign, a
  // default-constructed CampaignState.
  EXPECT_EQ(ckpt->sojourn_cap, 0u);
  EXPECT_FALSE(ckpt->has_scenario);
  EXPECT_EQ(ckpt->scenario.seed, 0u);
  EXPECT_EQ(ckpt->scenario.next_event, 0u);
  EXPECT_TRUE(ckpt->scenario.shard_pes.empty());
  EXPECT_TRUE(ckpt->scenario.storm_shard_mask.empty());
  EXPECT_EQ(ckpt->scenario.slack_p1.count(), 0u);
  EXPECT_EQ(ckpt->result.tenants[0].sojourn_sketch.count(), 0u);
  EXPECT_EQ(ckpt->result.tenants[0].sojourn_dropped, 0);
  ASSERT_EQ(ckpt->result.tenants[0].sojourn_s.size(), 2u);
  EXPECT_EQ(ckpt->result.tenants[0].sojourn_s[1], 1.9e-3);
  std::remove(path.c_str());
}

/// A minimal *version 6* payload: the v5 layout plus the scenario surface,
/// ending exactly where v6 ended — no cluster tail. Pins the decoder's
/// pre-cluster path: a frame written before the cluster layer existed must
/// resume as a single-mesh cluster with replication and failover off. The
/// v6 sub-blocks (sojourn sketch, campaign state) use the public codecs —
/// their layouts are pinned by their own round-trip tests.
std::string v6_payload() {
  common::ByteWriter out;
  out.u64(2);       // segment
  out.u64(41);      // next_run
  out.i32(6);       // segments
  out.i32(120);     // horizon_runs
  out.f64(1.0);     // t_start_s
  out.f64(1e8);     // t_end_s
  out.u64(1);       // tenant_names
  out.str("TinyNet");
  out.str("Odin");  // result.label
  out.u64(1);       // result.tenants
  {                 // one v6 tenant record
    out.str("TinyNet");
    out.i32(41);   // runs
    out.i32(3);    // reprograms
    out.i32(77);   // mismatches
    out.i32(2);    // retries
    out.i32(1);    // degraded_runs
    out.i32(4);    // updates_accepted
    out.i32(0);    // updates_rejected
    out.i32(0);    // updates_rolled_back
    out.i64(5);    // buffer_dropped
    out.i64(0);    // buffer_quarantined
    out.f64(1.25e-3);  // inference energy/latency
    out.f64(3.5e-4);
    out.f64(4.0e-3);  // reprogram energy/latency
    out.f64(9.0e-4);
    out.f64(0.0);  // v2: slo_s
    out.i32(0);    // shed_runs
    out.i32(0);    // breaker_open_runs
    out.i32(0);    // deadline_misses
    out.i32(0);    // deferred_reprograms
    out.i32(0);    // deadline_stopped_retries
    out.i32(0);    // searches_truncated
    out.i32(0);    // breaker_opens
    out.i32(0);    // breaker_reopens
    out.i32(0);    // breaker_probes
    out.i32(0);    // breaker_closes
    out.i32(0);    // watchdog_stalls
    out.u64(2);    // sojourn samples
    out.f64(3.5e-4);
    out.f64(1.9e-3);
    out.i32(0);    // v3: batches_formed
    out.i32(0);    // batch_members
    out.i32(0);    // max_batch
    out.i32(0);    // batch_slo_capped
    out.i32(6);    // v4: rows_remapped
    out.i32(1);    // crossbars_retired
    out.i64(384);  // writes_leveled
    out.i32(2);    // wear_deferred_reprograms
    out.i32(10);   // spares_remaining
    out.f64(4.75e-3);  // v5: service_s
    out.i32(17);       // pipelined_runs
    SojournSketch sketch;  // v6: live sojourn sketch + dropped counter
    sketch.add(3.5e-4);
    sketch.add(1.9e-3);
    encode_sojourn_sketch(sketch, out);
    out.i64(11);  // sojourn_dropped
  }
  out.f64(2.0e-3);  // programming energy/latency
  out.f64(1.0e-4);
  out.i32(3);  // switches
  out.i32(4);  // policy_updates
  {            // controller snapshot (unversioned, same as v1)
    out.f64(12.5);    // programmed_at_s
    out.i32(3);       // reprogram_count
    out.i32(4);       // update_count
    out.f64(1.0);     // health_fraction
    out.boolean(false);
    out.f64(1.0);     // eta_scale
    out.i32(2);       // retry_count
    out.i32(1);       // degraded_runs
    out.i32(4);       // updates_accepted
    out.i32(0);       // updates_rejected
    out.i32(0);       // updates_rolled_back
    out.i32(0);       // probation_left
    out.i64(0);       // probation_mismatches
    out.i64(0);       // probation_layers
    out.f64(0.0);     // pre_update_rate
    out.f64(0.0);     // mismatch_rate_ema
    out.u64(0);       // buffer_entries
    out.u64(0);       // buffer_quarantine
    out.u64(0);       // last_update_batch
    out.u64(5);       // buffer_dropped
    out.u64(0);       // buffer_quarantine_hits
    out.str("");      // policy_blob
    out.str("");      // last_good_blob
  }
  out.boolean(true);  // has_faults
  out.i32(7);         // wear: campaigns
  out.i32(12);        // stuck_cells
  out.i32(1);         // failed_wordlines
  out.i32(0);         // failed_bitlines
  out.u64(0);         // health_maps
  out.boolean(false);  // v2: has_resilience
  out.i32(0);          // shed_policy
  out.u64(0);          // queue_capacity
  out.f64(0.0);        // busy_until_s
  out.u64(0);          // pending_runs
  out.u64(0);          // breakers
  out.u64(0);          // fallback_ous
  out.boolean(false);  // v3: batching_enabled
  out.i32(0);          // batch_cap
  out.boolean(true);   // v4: leveling_enabled
  out.i32(16);         // leveling_spare_rows
  out.f64(0.8);        // leveling_wear_budget
  out.i32(1);          // wear.crossbars_retired
  out.i32(4);          // wear_seg_base_rows_remapped
  out.i32(1);          // wear_seg_base_crossbars_retired
  out.i64(256);        // wear_seg_base_writes_leveled
  out.i32(2);          // controller.wear_deferred_reprograms
  out.i32(1);          // controller.retired_seen
  out.u64(0);          // wear_maps
  out.i32(2);          // v5: fleet_shards
  out.i32(1);          // fleet_shard_index
  out.boolean(true);   // has_service_models
  out.u64(1);          // service_models
  out.f64(1.5e-9);     // noc_extra.energy_j
  out.f64(2.5e-7);     // noc_extra.latency_s
  out.f64(0.62);       // pipeline_overlap
  out.u64(64);         // v6: sojourn_cap
  out.boolean(false);  // has_scenario
  encode_campaign_state(CampaignState{}, out);
  return out.bytes();
}

TEST(Checkpoint, Version6FrameDecodesAsSingleMeshCluster) {
  const std::string path = temp_base("v6cluster") + ".a";
  write_file(path, frame_with_version(6, 9, v6_payload()));
  const auto ckpt = load_checkpoint_file(path);
  ASSERT_TRUE(ckpt.has_value());
  // The v6 fields decode as written...
  EXPECT_EQ(ckpt->segment, 2u);
  EXPECT_EQ(ckpt->sojourn_cap, 64u);
  ASSERT_EQ(ckpt->result.tenants.size(), 1u);
  EXPECT_EQ(ckpt->result.tenants[0].sojourn_sketch.count(), 2u);
  EXPECT_EQ(ckpt->result.tenants[0].sojourn_dropped, 11);
  // ...and the cluster surface comes back in the pre-cluster default
  // state: a single-mesh cluster with replication and failover off,
  // nothing fired, empty per-mesh/per-tenant vectors, zeroed ledgers —
  // and zeroed per-tenant failover counters.
  EXPECT_FALSE(ckpt->has_cluster);
  EXPECT_EQ(ckpt->cluster.meshes, 1);
  EXPECT_EQ(ckpt->cluster.replication_epochs, 0);
  EXPECT_FALSE(ckpt->cluster.failover);
  EXPECT_EQ(ckpt->cluster.outages_fired, 0);
  EXPECT_EQ(ckpt->cluster.replication_rounds, 0);
  EXPECT_TRUE(ckpt->cluster.mesh_down.empty());
  EXPECT_TRUE(ckpt->cluster.replica_runs.empty());
  EXPECT_TRUE(ckpt->cluster.breakers.empty());
  EXPECT_EQ(ckpt->cluster.failovers, 0);
  EXPECT_EQ(ckpt->cluster.outage_dropped, 0);
  EXPECT_EQ(ckpt->cluster.rpo_max_s, 0.0);
  EXPECT_EQ(ckpt->result.tenants[0].failovers, 0);
  EXPECT_EQ(ckpt->result.tenants[0].restored_stale, 0);
  EXPECT_EQ(ckpt->result.tenants[0].lost_runs, 0);
  EXPECT_EQ(ckpt->result.tenants[0].outage_dropped, 0);
  EXPECT_EQ(ckpt->result.tenants[0].rpo_s, 0.0);
  EXPECT_EQ(ckpt->result.tenants[0].rto_s, 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, MidFrameTruncationSweepAlwaysFallsBack) {
  // A torn write can stop after *any* byte: header, payload, CRC. Every
  // strict prefix of a valid frame must be rejected by the file loader and
  // must fall back to the older-but-valid slot — a sweep, not spot checks.
  const std::string base = temp_base("tornsweep");
  remove_slots(base);
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  CheckpointWriter writer(base);
  ASSERT_TRUE(writer.write(ckpt));  // seq 1 -> .a
  ASSERT_TRUE(writer.write(ckpt));  // seq 2 -> .b
  const std::string newest = base + ".b";
  const std::string pristine = read_file(newest);
  ASSERT_GT(pristine.size(), 32u);  // magic + version + seq + size + crc
  // Every cut inside the 32-byte header, then a stride through the
  // payload, then the last bytes (a torn CRC tail).
  std::vector<std::size_t> cuts;
  for (std::size_t c = 0; c < 32; ++c) cuts.push_back(c);
  const std::size_t stride = std::max<std::size_t>(1, pristine.size() / 256);
  for (std::size_t c = 32; c < pristine.size(); c += stride) cuts.push_back(c);
  for (std::size_t c = pristine.size() - 4; c < pristine.size(); ++c)
    cuts.push_back(c);
  for (std::size_t cut : cuts) {
    write_file(newest, pristine.substr(0, cut));
    EXPECT_FALSE(load_checkpoint_file(newest).has_value()) << "cut=" << cut;
    const auto fallback = load_latest_checkpoint(base);
    ASSERT_TRUE(fallback.has_value()) << "cut=" << cut;
    EXPECT_EQ(fallback->sequence, 1u) << "cut=" << cut;
  }
  // Restoring the pristine bytes restores the newest checkpoint.
  write_file(newest, pristine);
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 2u);
  remove_slots(base);
}

TEST(Checkpoint, ZeroLengthFilesAreNulloptNotCrash) {
  // The degenerate torn write: rename landed but the data never made it.
  const std::string base = temp_base("zerolen");
  remove_slots(base);
  write_file(base + ".a", "");
  EXPECT_FALSE(load_checkpoint_file(base + ".a").has_value());
  // Zero-length newest slot falls back to the valid older slot...
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  CheckpointWriter writer(base);
  ASSERT_TRUE(writer.write(ckpt));  // overwrites .a (seq 1)
  ASSERT_TRUE(writer.write(ckpt));  // .b (seq 2)
  write_file(base + ".b", "");
  const auto fallback = load_latest_checkpoint(base);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->sequence, 1u);
  // ...and a pair of zero-length slots is a clean nullopt.
  write_file(base + ".a", "");
  EXPECT_FALSE(load_latest_checkpoint(base).has_value());
  remove_slots(base);
}

TEST(Checkpoint, FutureVersionFrameIsRejectedNotMisparsed) {
  // A payload from a newer build has an unknown layout; guessing would be
  // silent corruption. Same bytes, same CRC — only the version differs.
  const std::string path = temp_base("v3frame") + ".a";
  write_file(path, frame_with_version(kCheckpointVersion + 1, 9, v1_payload()));
  EXPECT_FALSE(load_checkpoint_file(path).has_value());
  write_file(path, frame_with_version(0, 9, v1_payload()));
  EXPECT_FALSE(load_checkpoint_file(path).has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, ControllerSnapshotRestoreRoundTrip) {
  const auto tenant = testing::tiny_mapped();
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.update_options.epochs = 20;
  OdinController a(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  double t = 1.0;
  for (int i = 0; i < 10; ++i, t *= 3.0) a.run_inference(t);
  ControllerSnapshot snap = a.snapshot();

  OdinController b(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  ASSERT_TRUE(b.restore(snap));
  // The restored controller continues bitwise like the original.
  for (int i = 0; i < 6; ++i, t *= 2.0) {
    const RunResult ra = a.run_inference(t);
    const RunResult rb = b.run_inference(t);
    EXPECT_EQ(ra.mismatches, rb.mismatches);
    EXPECT_EQ(ra.reprogrammed, rb.reprogrammed);
    EXPECT_EQ(ra.inference.energy_j, rb.inference.energy_j);
    EXPECT_EQ(ra.inference.latency_s, rb.inference.latency_s);
  }
  EXPECT_EQ(a.update_count(), b.update_count());

  // A corrupted policy blob is refused and leaves the target unchanged.
  ControllerSnapshot bad = snap;
  bad.policy_blob = "garbage";
  OdinController c(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  EXPECT_FALSE(c.restore(bad));
  EXPECT_EQ(c.update_count(), 0);
}

}  // namespace
}  // namespace odin::core
