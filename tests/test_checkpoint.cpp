// Crash-safe checkpoint layer: payload round-trip properties, the
// double-buffered atomic file pair, and corruption fuzzing (random byte
// flips must always be detected and must always fall back to the other
// slot — the durability contract of core/checkpoint.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "policy/serialization.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

std::string temp_base(const std::string& tag) {
  return ::testing::TempDir() + "odin_ckpt_" + tag;
}

void remove_slots(const std::string& base) {
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A checkpoint with every field populated non-trivially: the controller
/// snapshot comes from a real controller that has served runs, filled its
/// buffer and promoted at least one update.
ServingCheckpoint sample_checkpoint(const ou::MappedModel& tenant) {
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.update_options.epochs = 20;
  OdinController controller(tenant, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  double t = 1.0;
  for (int i = 0; i < 12; ++i, t *= 3.0) controller.run_inference(t);

  ServingCheckpoint ckpt;
  ckpt.segment = 2;
  ckpt.next_run = 41;
  ckpt.segments = 6;
  ckpt.horizon_runs = 120;
  ckpt.t_start_s = 1.0;
  ckpt.t_end_s = 1e8;
  ckpt.tenant_names = {"TinyNet", "OtherNet"};
  ckpt.result.label = "Odin";
  ckpt.result.tenants.resize(2);
  ckpt.result.tenants[0].name = "TinyNet";
  ckpt.result.tenants[0].runs = 41;
  ckpt.result.tenants[0].mismatches = 77;
  ckpt.result.tenants[0].buffer_dropped = 5;
  ckpt.result.tenants[0].inference = {1.25e-3, 3.5e-4};
  ckpt.result.tenants[1].name = "OtherNet";
  ckpt.result.programming = {2.0e-3, 1.0e-4};
  ckpt.result.switches = 3;
  ckpt.result.policy_updates = 4;
  ckpt.controller = controller.snapshot();
  ckpt.has_faults = true;
  ckpt.wear = {7, 12, 1, 0};
  reram::CrossbarHealth health;
  health.ou_rows = 8;
  health.ou_cols = 16;
  health.stuck_cells = 9;
  health.scanned_cells = 4096;
  health.fault_fraction = 9.0 / 4096.0;
  health.windows = {{0, 0, 3}, {8, 16, 6}};
  ckpt.health_maps.push_back(std::move(health));
  return ckpt;
}

TEST(Checkpoint, PayloadRoundTripIsExact) {
  const auto tenant = testing::tiny_mapped();
  const ServingCheckpoint ckpt = sample_checkpoint(tenant);

  common::ByteWriter encoded;
  encode_checkpoint(ckpt, encoded);
  common::ByteReader reader(encoded.bytes());
  const auto decoded = decode_checkpoint(reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(reader.exhausted());

  // Spot-check the fields a resume depends on...
  EXPECT_EQ(decoded->segment, 2u);
  EXPECT_EQ(decoded->next_run, 41u);
  EXPECT_EQ(decoded->tenant_names, ckpt.tenant_names);
  EXPECT_TRUE(decoded->result.resumed);
  EXPECT_EQ(decoded->result.tenants[0].mismatches, 77);
  EXPECT_EQ(decoded->wear.campaigns, 7);
  ASSERT_EQ(decoded->health_maps.size(), 1u);
  EXPECT_EQ(decoded->health_maps[0].windows.size(), 2u);
  EXPECT_EQ(decoded->controller.buffer_entries, ckpt.controller.buffer_entries);
  EXPECT_EQ(decoded->controller.policy_blob, ckpt.controller.policy_blob);
  // ...then pin full equality through the codec itself: re-encoding the
  // decoded checkpoint must reproduce the identical byte stream.
  common::ByteWriter reencoded;
  encode_checkpoint(*decoded, reencoded);
  EXPECT_EQ(encoded.bytes(), reencoded.bytes());
}

TEST(Checkpoint, TruncatedPayloadIsRejectedNotCrashed) {
  const auto tenant = testing::tiny_mapped();
  common::ByteWriter encoded;
  encode_checkpoint(sample_checkpoint(tenant), encoded);
  // Every strict prefix must decode to nullopt (fail-soft reader).
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          encoded.bytes().size() / 2,
                          encoded.bytes().size() - 1}) {
    common::ByteReader reader(
        std::string_view(encoded.bytes()).substr(0, cut));
    EXPECT_FALSE(decode_checkpoint(reader).has_value()) << "cut=" << cut;
  }
}

TEST(Checkpoint, PolicyBlobRoundTripsThroughBinarySerialization) {
  policy::OuPolicy policy{ou::OuLevelGrid(128)};
  common::ByteWriter out;
  policy::save_policy_binary(policy, out);
  common::ByteReader in(out.bytes());
  auto restored = policy::load_policy_binary(in);
  ASSERT_TRUE(restored.has_value());
  // Same parameters => same predictions everywhere we probe.
  for (double s : {0.0, 0.3, 0.9}) {
    policy::Features f{0.5, s, 0.6, 0.4};
    EXPECT_EQ(restored->predict(f), policy.predict(f));
  }
}

TEST(Checkpoint, WriterAlternatesSlotsAndSequencesSurviveRestart) {
  const std::string base = temp_base("writer");
  remove_slots(base);
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  {
    CheckpointWriter writer(base);
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_EQ(ckpt.sequence, 1u);
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_TRUE(writer.write(ckpt));
    EXPECT_EQ(writer.last_sequence(), 3u);
  }
  // Both slots exist; the pair's newest is sequence 3.
  ASSERT_FALSE(read_file(base + ".a").empty());
  ASSERT_FALSE(read_file(base + ".b").empty());
  const auto latest = load_latest_checkpoint(base);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->sequence, 3u);
  // A new writer (process restart) continues the sequence — it must never
  // reuse a number or overwrite the newest slot first.
  CheckpointWriter writer2(base);
  EXPECT_EQ(writer2.last_sequence(), 3u);
  EXPECT_TRUE(writer2.write(ckpt));
  EXPECT_EQ(ckpt.sequence, 4u);
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 4u);
  remove_slots(base);
}

TEST(Checkpoint, CorruptionFuzzEveryByteFlipFallsBackToOtherSlot) {
  const std::string base = temp_base("fuzz");
  remove_slots(base);
  const auto tenant = testing::tiny_mapped();
  ServingCheckpoint ckpt = sample_checkpoint(tenant);
  CheckpointWriter writer(base);
  ASSERT_TRUE(writer.write(ckpt));  // seq 1 -> .a
  ASSERT_TRUE(writer.write(ckpt));  // seq 2 -> .b
  const std::string newest = base + ".b";
  const std::string pristine = read_file(newest);
  ASSERT_FALSE(pristine.empty());

  common::Rng rng(0xfa11);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = pristine;
    const auto pos = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(corrupt.size()));
    const int bit = static_cast<int>(rng.uniform() * 8.0);
    corrupt[pos % corrupt.size()] ^= static_cast<char>(1 << (bit % 8));
    write_file(newest, corrupt);
    // The flipped slot must be detected (header checks or CRC) and the
    // loader must fall back to the older-but-valid slot. No crash, ever.
    EXPECT_FALSE(load_checkpoint_file(newest).has_value())
        << "undetected flip at byte " << pos;
    const auto fallback = load_latest_checkpoint(base);
    ASSERT_TRUE(fallback.has_value());
    EXPECT_EQ(fallback->sequence, 1u);
  }
  // Torn write (truncation) is detected the same way.
  write_file(newest, pristine.substr(0, pristine.size() / 2));
  EXPECT_FALSE(load_checkpoint_file(newest).has_value());
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 1u);
  // Restoring the pristine bytes restores the newest checkpoint.
  write_file(newest, pristine);
  EXPECT_EQ(load_latest_checkpoint(base)->sequence, 2u);
  remove_slots(base);
}

TEST(Checkpoint, BothSlotsCorruptMeansNulloptNotCrash) {
  const std::string base = temp_base("allbad");
  remove_slots(base);
  write_file(base + ".a", "definitely not a checkpoint");
  write_file(base + ".b", std::string(200, '\0'));
  EXPECT_FALSE(load_latest_checkpoint(base).has_value());
  remove_slots(base);
}

TEST(Checkpoint, ControllerSnapshotRestoreRoundTrip) {
  const auto tenant = testing::tiny_mapped();
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinConfig cfg;
  cfg.buffer_capacity = 8;
  cfg.update_options.epochs = 20;
  OdinController a(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  double t = 1.0;
  for (int i = 0; i < 10; ++i, t *= 3.0) a.run_inference(t);
  ControllerSnapshot snap = a.snapshot();

  OdinController b(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  ASSERT_TRUE(b.restore(snap));
  // The restored controller continues bitwise like the original.
  for (int i = 0; i < 6; ++i, t *= 2.0) {
    const RunResult ra = a.run_inference(t);
    const RunResult rb = b.run_inference(t);
    EXPECT_EQ(ra.mismatches, rb.mismatches);
    EXPECT_EQ(ra.reprogrammed, rb.reprogrammed);
    EXPECT_EQ(ra.inference.energy_j, rb.inference.energy_j);
    EXPECT_EQ(ra.inference.latency_s, rb.inference.latency_s);
  }
  EXPECT_EQ(a.update_count(), b.update_count());

  // A corrupted policy blob is refused and leaves the target unchanged.
  ControllerSnapshot bad = snap;
  bad.policy_blob = "garbage";
  OdinController c(tenant, nonideal, cost,
                   policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  EXPECT_FALSE(c.restore(bad));
  EXPECT_EQ(c.update_count(), 0);
}

}  // namespace
}  // namespace odin::core
