// Tests for the behavioural crossbar model: programming, analog MVM at OU
// granularity, ADC quantization, and drift-induced weight error.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reram/crossbar.hpp"

namespace odin::reram {
namespace {

std::vector<double> level_weights(const DeviceParams& p, int rows, int cols,
                                  common::Rng& rng) {
  // Weights on exact quantization levels, so ideal_weight round-trips.
  std::vector<double> w(static_cast<std::size_t>(rows) * cols);
  const int top = p.levels() - 1;
  for (double& v : w) {
    const int lvl = static_cast<int>(rng.uniform_index(p.levels()));
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    v = sign * static_cast<double>(lvl) / top;
  }
  return w;
}

TEST(Crossbar, ProgramRoundTripsQuantizedWeights) {
  const DeviceParams dev;
  Crossbar xbar(16, dev);
  common::Rng rng(5);
  const auto w = level_weights(dev, 8, 8, rng);
  xbar.program(w, 8, 8, 0.0);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_NEAR(xbar.ideal_weight(r, c), w[static_cast<std::size_t>(r) * 8 + c],
                  1e-12);
}

TEST(Crossbar, ProgrammedCellsCountsNonzeros) {
  const DeviceParams dev;
  Crossbar xbar(8, dev);
  const std::vector<double> w{1.0, 0.0, -1.0, 0.0};
  xbar.program(w, 2, 2, 0.0);
  EXPECT_EQ(xbar.programmed_cells(), 2);
  EXPECT_EQ(xbar.programmed_rows(), 2);
  EXPECT_EQ(xbar.programmed_cols(), 2);
}

TEST(Crossbar, IdealMvmMatchesManualDotProduct) {
  const DeviceParams dev;
  Crossbar xbar(8, dev);
  // 2x3: columns are [1,-1], [1/3, 1/3], [0, 1].
  const std::vector<double> w{1.0, 1.0 / 3.0, 0.0, -1.0, 1.0 / 3.0, 1.0};
  xbar.program(w, 2, 3, 0.0);
  const std::vector<double> in{0.5, 1.0};
  const auto out = xbar.ideal_mvm(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0], 0.5 - 1.0, 1e-12);
  EXPECT_NEAR(out[1], 0.5 / 3.0 + 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(out[2], 1.0, 1e-12);
}

TEST(Crossbar, AnalogMvmApproachesIdealAtT0WithFineAdc) {
  const DeviceParams dev;
  Crossbar xbar(32, dev);
  common::Rng rng(11);
  const auto w = level_weights(dev, 32, 32, rng);
  xbar.program(w, 32, 32, 0.0);
  std::vector<double> in(32);
  for (double& v : in) v = rng.uniform();
  const auto ideal = xbar.ideal_mvm(in);
  // Small OU (4x4) at t0: only ~0.27% IR-drop degradation + 12-bit ADC.
  const auto analog = xbar.mvm(in, 4, 4, dev.t0_s, 12);
  for (std::size_t i = 0; i < ideal.size(); ++i)
    EXPECT_NEAR(analog[i], ideal[i], std::abs(ideal[i]) * 0.01 + 0.05);
}

TEST(Crossbar, CoarserOuProducesLargerError) {
  const DeviceParams dev;
  Crossbar xbar(128, dev);
  common::Rng rng(13);
  const auto w = level_weights(dev, 128, 128, rng);
  xbar.program(w, 128, 128, 0.0);
  const double e_fine = xbar.weight_rms_error(1.0, 4, 4);
  const double e_coarse = xbar.weight_rms_error(1.0, 128, 128);
  EXPECT_LT(e_fine, e_coarse);
}

TEST(Crossbar, ErrorGrowsWithDriftTime) {
  const DeviceParams dev;
  Crossbar xbar(32, dev);
  common::Rng rng(17);
  const auto w = level_weights(dev, 32, 32, rng);
  xbar.program(w, 32, 32, 0.0);
  double prev = xbar.weight_rms_error(1.0, 16, 16);
  for (double t : {1e2, 1e4, 1e6, 1e8}) {
    const double e = xbar.weight_rms_error(t, 16, 16);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Crossbar, ReprogramResetsDriftClock) {
  const DeviceParams dev;
  Crossbar xbar(16, dev);
  common::Rng rng(19);
  const auto w = level_weights(dev, 16, 16, rng);
  xbar.program(w, 16, 16, 0.0);
  const double degraded = xbar.weight_rms_error(1e8, 8, 8);
  xbar.program(w, 16, 16, 1e8);  // reprogram at 1e8 s
  const double refreshed = xbar.weight_rms_error(1e8 + 1.0, 8, 8);
  // Reprogramming removes the accumulated drift error; the residual is the
  // (much smaller) IR-drop term. With the calibrated v the ratio is ~8x.
  EXPECT_LT(refreshed, degraded * 0.2);
  EXPECT_DOUBLE_EQ(xbar.programmed_at_s(), 1e8);
}

TEST(Crossbar, OuComposedMvmEqualsWholeRegionPass) {
  const DeviceParams dev;
  Crossbar xbar(16, dev);
  common::Rng rng(23);
  const auto w = level_weights(dev, 16, 16, rng);
  xbar.program(w, 16, 16, 0.0);
  std::vector<double> in(16);
  for (double& v : in) v = rng.uniform();
  // With a very fine ADC and the same OU degradation, partial sums across
  // row bands must add up to the single-band result within ADC resolution.
  const auto whole = xbar.mvm(in, 16, 16, dev.t0_s, 14);
  auto ideal = xbar.ideal_mvm(in);
  for (std::size_t i = 0; i < whole.size(); ++i)
    EXPECT_NEAR(whole[i], ideal[i] * 0.9895, 0.05);  // 16+16 lines IR drop
}

// ADC precision sweep: quantization error shrinks monotonically with bits.
class AdcSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdcSweep, ErrorBoundedByLsb) {
  const DeviceParams dev;
  Crossbar xbar(16, dev);
  common::Rng rng(29);
  const auto w = level_weights(dev, 16, 16, rng);
  xbar.program(w, 16, 16, 0.0);
  std::vector<double> in(16, 1.0);
  const int bits = GetParam();
  const auto out = xbar.mvm_ou(in, 0, 16, 0, 16, dev.t0_s, bits);
  const auto ideal = xbar.ideal_mvm(in);
  const double full_scale = 16.0;
  const double lsb = 2.0 * full_scale / ((1 << bits) - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Error = IR-drop (~1%) + at most one LSB of quantization.
    EXPECT_LE(std::abs(out[i] - ideal[i]),
              std::abs(ideal[i]) * 0.015 + lsb);
  }
}

INSTANTIATE_TEST_SUITE_P(BitsRange, AdcSweep, ::testing::Values(3, 4, 5, 6, 8));

TEST(Crossbar, ProgramNoiseChangesStoredValuesButBoundedly) {
  const DeviceParams dev;
  NoiseParams np;
  Crossbar noisy(16, dev, NoiseModel(np, 77));
  Crossbar clean(16, dev);
  common::Rng rng(31);
  const auto w = level_weights(dev, 16, 16, rng);
  noisy.program(w, 16, 16, 0.0);
  clean.program(w, 16, 16, 0.0);
  double max_rel = 0.0;
  bool any_diff = false;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      const double a = noisy.ideal_weight(r, c);
      const double b = clean.ideal_weight(r, c);
      if (a != b) any_diff = true;
      if (b != 0.0) max_rel = std::max(max_rel, std::abs(a - b) / std::abs(b));
    }
  }
  EXPECT_TRUE(any_diff);
  EXPECT_LT(max_rel, 6.0 * np.program_sigma + 0.35);  // quantization + noise
}

}  // namespace
}  // namespace odin::reram
