// Tests for the non-ideality model: Eq. 3-4 wiring, layer sensitivity, the
// two feasibility constraints, and the reprogramming-trigger timing that
// calibrates Fig. 6.
#include <gtest/gtest.h>

#include "ou/nonideality.hpp"

namespace odin::ou {
namespace {

NonIdealityModel model() {
  return NonIdealityModel(reram::DeviceParams{}, NonIdealityParams{});
}

TEST(NonIdeality, TotalNfMatchesDeviceEq4) {
  const auto m = model();
  const OuConfig cfg{16, 16};
  EXPECT_DOUBLE_EQ(
      m.total_nf(1e4, cfg),
      reram::relative_conductance_error(m.device(), 1e4, 16, 16));
}

TEST(NonIdeality, ComponentsSumToTotal) {
  const auto m = model();
  const OuConfig cfg{32, 8};
  for (double t : {1.0, 1e3, 1e6}) {
    EXPECT_NEAR(m.drift_nf(t) + m.ir_nf(t, cfg), m.total_nf(t, cfg), 1e-12);
  }
}

TEST(NonIdeality, SensitivityDecaysWithDepth) {
  const auto m = model();
  const int n = 20;
  double prev = 1e9;
  for (int j = 0; j < n; ++j) {
    const double s = m.layer_sensitivity(j, n);
    EXPECT_LT(s, prev);
    EXPECT_GE(s, 1.0);
    prev = s;
  }
  EXPECT_NEAR(m.layer_sensitivity(0, n), m.params().sensitivity_max, 1e-12);
}

TEST(NonIdeality, EarlyLayersGetTighterOuBudgetAtT0) {
  const auto m = model();
  const OuLevelGrid grid(128);
  const double s_early = m.layer_sensitivity(0, 20);
  const double s_late = m.layer_sensitivity(19, 20);
  const int early_budget = m.max_feasible_sum(1.0, grid, s_early);
  const int late_budget = m.max_feasible_sum(1.0, grid, s_late);
  EXPECT_LT(early_budget, late_budget);
  // The paper's Fig. 3: sensitive early layers land around 16x8 (sum 24),
  // insensitive late layers can afford ~32x32 (sum 64).
  EXPECT_LE(early_budget, 40);
  EXPECT_GE(late_budget, 64);
}

TEST(NonIdeality, FeasibleSetShrinksOverTime) {
  const auto m = model();
  const OuLevelGrid grid(128);
  int prev = 1 << 20;
  for (double t : {1.0, 1e2, 1e4, 1e6, 3e7}) {
    const int budget = m.max_feasible_sum(t, grid, 1.0);
    EXPECT_LE(budget, prev);
    EXPECT_GT(budget, 0) << "still feasible at " << t;
    prev = budget;
  }
}

TEST(NonIdeality, ReprogramTriggerMatchesCalibration) {
  // DESIGN.md §4: with the calibrated constants the min-OU crossing falls
  // between 3e7 s and 1e8 s so Odin reprograms exactly once per horizon.
  const auto m = model();
  const OuLevelGrid grid(128);
  EXPECT_FALSE(m.reprogram_required(3e7, grid, 1.0));
  EXPECT_TRUE(m.reprogram_required(1e8, grid, 1.0));
}

TEST(NonIdeality, SixteenBySixteenCrossingNearTwoMillionSeconds) {
  // Fig. 6: (16x16) reprograms ~43-48 times over 1e8 s -> its eta crossing
  // sits near 2e6 s.
  const auto m = model();
  const OuConfig cfg{16, 16};
  const double eta = m.params().eta_total;
  EXPECT_LT(m.total_nf(1e6, cfg), eta);
  EXPECT_GT(m.total_nf(4e6, cfg), eta);
}

// Feasibility is monotone: if (R,C) is feasible then any config with
// smaller R+C is too (at the same sensitivity and time).
class FeasibilityMonotone
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FeasibilityMonotone, SmallerSumStaysFeasible) {
  const auto [t, sensitivity] = GetParam();
  const auto m = model();
  const OuLevelGrid grid(128);
  for (const OuConfig& a : grid.all_configs()) {
    if (!m.feasible(t, a, sensitivity)) continue;
    for (const OuConfig& b : grid.all_configs()) {
      if (b.sum() <= a.sum())
        EXPECT_TRUE(m.feasible(t, b, sensitivity))
            << a.to_string() << " feasible but " << b.to_string() << " not";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TimesAndSensitivities, FeasibilityMonotone,
    ::testing::Combine(::testing::Values(1.0, 1e3, 1e6, 5e7),
                       ::testing::Values(1.0, 1.5, 3.0)));

TEST(NonIdeality, IrConstraintBindsOnlySensitiveLayers) {
  const auto m = model();
  const OuConfig big{64, 32};
  // At t0 the 64x32 config passes the total constraint but fails the
  // IR constraint at high sensitivity.
  EXPECT_LE(m.total_nf(1.0, big), m.params().eta_total);
  EXPECT_TRUE(m.feasible(1.0, big, 0.5));
  EXPECT_FALSE(m.feasible(1.0, big, 3.0));
}

}  // namespace
}  // namespace odin::ou
