// Tests for the discrete OU level grid (paper Sec. V-A).
#include <gtest/gtest.h>

#include "ou/ou_config.hpp"

namespace odin::ou {
namespace {

TEST(OuConfig, BasicAccessors) {
  const OuConfig c{16, 8};
  EXPECT_EQ(c.sum(), 24);
  EXPECT_EQ(c.product(), 128);
  EXPECT_EQ(c.to_string(), "16x8");
  EXPECT_EQ(c, (OuConfig{16, 8}));
  EXPECT_NE(c, (OuConfig{8, 16}));
}

TEST(OuLevelGrid, PaperGridFor128Crossbar) {
  const OuLevelGrid grid(128);
  EXPECT_EQ(grid.levels(), 6);  // {4, 8, 16, 32, 64, 128}
  EXPECT_EQ(grid.size_at(0), 4);
  EXPECT_EQ(grid.size_at(5), 128);
  EXPECT_EQ(grid.all_configs().size(), 36u);
  EXPECT_EQ(grid.min_config(), (OuConfig{4, 4}));
}

TEST(OuLevelGrid, TruncatesForSmallerCrossbars) {
  EXPECT_EQ(OuLevelGrid(64).levels(), 5);
  EXPECT_EQ(OuLevelGrid(32).levels(), 4);
  EXPECT_EQ(OuLevelGrid(32).all_configs().size(), 16u);
  EXPECT_EQ(OuLevelGrid(32).size_at(3), 32);
}

TEST(OuLevelGrid, LevelOfRoundTrips) {
  const OuLevelGrid grid(128);
  for (int l = 0; l < grid.levels(); ++l)
    EXPECT_EQ(grid.level_of(grid.size_at(l)), l);
  EXPECT_EQ(grid.level_of(9), -1);    // not a power of two
  EXPECT_EQ(grid.level_of(2), -1);    // below the grid
  EXPECT_EQ(grid.level_of(256), -1);  // above the grid
}

TEST(OuLevelGrid, ConfigAtComposesLevels) {
  const OuLevelGrid grid(128);
  EXPECT_EQ(grid.config_at(2, 1), (OuConfig{16, 8}));
  EXPECT_EQ(grid.config_at(5, 5), (OuConfig{128, 128}));
}

TEST(OuLevelGrid, AllConfigsAreUniqueAndOnGrid) {
  const OuLevelGrid grid(64);
  const auto configs = grid.all_configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_GE(grid.level_of(configs[i].rows), 0);
    EXPECT_GE(grid.level_of(configs[i].cols), 0);
    for (std::size_t j = i + 1; j < configs.size(); ++j)
      EXPECT_NE(configs[i], configs[j]);
  }
}

}  // namespace
}  // namespace odin::ou
