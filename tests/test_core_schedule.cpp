// Tests for the inference-run schedule generators.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace odin::core {
namespace {

const HorizonConfig kHorizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 100};

TEST(Schedules, LogUniformMatchesRunSchedule) {
  const auto a = make_schedule(ScheduleKind::kLogUniform, kHorizon);
  const auto b = run_schedule(kHorizon);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Schedules, UniformHasConstantStep) {
  const auto s = make_schedule(ScheduleKind::kUniform, kHorizon);
  ASSERT_EQ(s.size(), 100u);
  EXPECT_DOUBLE_EQ(s.front(), 1.0);
  EXPECT_DOUBLE_EQ(s.back(), 1e8);
  const double step = s[1] - s[0];
  for (std::size_t i = 2; i < s.size(); ++i)
    EXPECT_NEAR(s[i] - s[i - 1], step, step * 1e-9);
}

TEST(Schedules, PoissonIsMonotoneAndDeterministic) {
  const auto a = make_schedule(ScheduleKind::kPoisson, kHorizon, 7);
  const auto b = make_schedule(ScheduleKind::kPoisson, kHorizon, 7);
  const auto c = make_schedule(ScheduleKind::kPoisson, kHorizon, 8);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
    if (i > 0) EXPECT_GE(a[i], a[i - 1]);
    EXPECT_GE(a[i], kHorizon.t_start_s);
    EXPECT_LE(a[i], kHorizon.t_end_s);
  }
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i] != c[i];
  EXPECT_TRUE(differs);
}

TEST(Schedules, PoissonMeanGapApproximatesUniformRate) {
  const auto s = make_schedule(ScheduleKind::kPoisson, kHorizon, 11);
  // Mean arrival gap ~ horizon / runs (within Monte-Carlo slack).
  const double span = s.back() - s.front();
  const double expected = (kHorizon.t_end_s - kHorizon.t_start_s);
  EXPECT_GT(span, 0.5 * expected);
}

TEST(Schedules, UniformConcentratesRunsLateInLogTime) {
  // The property the ablation bench explores: under a uniform-in-time
  // schedule nearly all runs land in the last decade of the drift horizon.
  const auto s = make_schedule(ScheduleKind::kUniform, kHorizon);
  int late = 0;
  for (double t : s)
    if (t > 1e7) ++late;
  EXPECT_GT(late, 85);
  const auto logs = make_schedule(ScheduleKind::kLogUniform, kHorizon);
  late = 0;
  for (double t : logs)
    if (t > 1e7) ++late;
  EXPECT_LT(late, 20);
}

}  // namespace
}  // namespace odin::core
