// Tests for the Weibull endurance (write-wear) model.
#include <gtest/gtest.h>

#include <cmath>

#include "reram/endurance.hpp"

namespace odin::reram {
namespace {

TEST(Endurance, FailureFractionIsMonotoneCdf) {
  const EnduranceModel model;
  EXPECT_DOUBLE_EQ(model.failure_fraction(0.0), 0.0);
  double prev = 0.0;
  for (double n = 1e3; n <= 1e7; n *= 10.0) {
    const double f = model.failure_fraction(n);
    EXPECT_GT(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_NEAR(model.failure_fraction(1e9), 1.0, 1e-9);
}

TEST(Endurance, CharacteristicLifeIs63Percent) {
  const EnduranceModel model;
  EXPECT_NEAR(model.failure_fraction(model.params().characteristic_cycles),
              1.0 - std::exp(-1.0), 1e-12);
}

TEST(Endurance, BudgetInversionRoundTrips) {
  const EnduranceModel model;
  for (double budget : {1e-4, 1e-3, 1e-2, 0.5}) {
    const double n = model.cycles_to_failure_budget(budget);
    EXPECT_NEAR(model.failure_fraction(n), budget, budget * 1e-9);
  }
  EXPECT_DOUBLE_EQ(model.cycles_to_failure_budget(0.0), 0.0);
  EXPECT_TRUE(std::isinf(model.cycles_to_failure_budget(1.0)));
}

TEST(Endurance, SampledLifetimesMatchTheCdf) {
  const EnduranceModel model;
  common::Rng rng(11);
  constexpr int kN = 20'000;
  const double probe = model.params().characteristic_cycles;
  int below = 0;
  for (int i = 0; i < kN; ++i)
    if (model.sample_lifetime(rng) < probe) ++below;
  EXPECT_NEAR(static_cast<double>(below) / kN, 1.0 - std::exp(-1.0), 0.02);
}

TEST(Endurance, FewerReprogramsMeanLongerLifetime) {
  const EnduranceModel model;
  // Fig. 6's counts: 48 reprograms per 1e8 s (16x16) vs 1 (Odin).
  const double base = model.lifetime_seconds(48.0, 1e8);
  const double odin = model.lifetime_seconds(1.0, 1e8);
  EXPECT_NEAR(odin / base, 48.0, 1e-6);
  EXPECT_TRUE(std::isinf(model.lifetime_seconds(0.0, 1e8)));
}

}  // namespace
}  // namespace odin::reram
