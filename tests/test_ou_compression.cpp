// Tests for the OU index-storage model (the paper's Sec. II argument about
// stored-index schemes vs runtime-configurable OUs).
#include <gtest/gtest.h>

#include "ou/compression.hpp"
#include "test_helpers.hpp"

namespace odin::ou {
namespace {

TEST(IndexStorage, AddressBits) {
  EXPECT_EQ(IndexStorageModel(128).address_bits(), 7);
  EXPECT_EQ(IndexStorageModel(64).address_bits(), 6);
  EXPECT_EQ(IndexStorageModel(32).address_bits(), 5);
}

TEST(IndexStorage, LayerBitsMatchClosedForm) {
  const ou::MappedModel model = testing::tiny_mapped();
  const IndexStorageModel storage(model.crossbar_size());
  const OuConfig cfg{16, 16};
  const auto& counts = model.mapping(0).counts(cfg);
  EXPECT_EQ(storage.layer_index_bits(model.mapping(0), cfg),
            counts.live_blocks * (16 + 16) * 7);
}

TEST(IndexStorage, ModelBitsSumOverLayers) {
  const ou::MappedModel model = testing::tiny_mapped();
  const IndexStorageModel storage(model.crossbar_size());
  const OuConfig cfg{8, 4};
  std::int64_t manual = 0;
  for (std::size_t j = 0; j < model.layer_count(); ++j)
    manual += storage.layer_index_bits(model.mapping(j), cfg);
  EXPECT_EQ(storage.model_index_bits(model, cfg), manual);
  EXPECT_GT(manual, 0);
}

TEST(IndexStorage, UnionGrowsLinearlyWithTrackedConfigs) {
  // The paper's "unlimited storage" argument: every configuration a
  // time-varying scheme visits needs its own tables.
  const ou::MappedModel model = testing::tiny_mapped();
  const IndexStorageModel storage(model.crossbar_size());
  const std::vector<OuConfig> one{{16, 16}};
  const std::vector<OuConfig> several{{16, 16}, {16, 8}, {8, 8}, {8, 4},
                                      {4, 4}};
  const auto single = storage.model_index_bits_union(model, one);
  const auto many = storage.model_index_bits_union(model, several);
  EXPECT_GT(many, 3 * single);
}

TEST(IndexStorage, FinerOusNeedMoreIndexBitsOnDenseLayers) {
  // Finer OUs mean more live blocks on dense data; each block's per-entry
  // cost shrinks slower than the count grows.
  const ou::MappedModel model = testing::tiny_mapped();
  const IndexStorageModel storage(model.crossbar_size());
  EXPECT_GT(storage.model_index_bits(model, {4, 4}),
            storage.model_index_bits(model, {32, 32}));
}

}  // namespace
}  // namespace odin::ou
