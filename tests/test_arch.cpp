// Tests for the architecture module: Table I accounting, the mesh NoC,
// system mapping and the Sec. V-E overhead model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/components.hpp"
#include "arch/noc.hpp"
#include "arch/overhead.hpp"
#include "arch/pipeline.hpp"
#include "arch/system.hpp"
#include "dnn/zoo.hpp"

namespace odin::arch {
namespace {

TEST(Components, TableIAreaSumsToPaperHeadline) {
  // Paper: tile area 0.28 mm^2 (the rows sum to 0.2822).
  EXPECT_NEAR(tile_area_mm2(), 0.2822, 1e-6);
  EXPECT_EQ(tile_components().size(), 9u);
}

TEST(Components, TileCapacity) {
  const TileConfig tile;
  EXPECT_EQ(tile.cell_capacity(), 96LL * 128 * 128);
  EXPECT_EQ(tile.adcs, 96);
  EXPECT_DOUBLE_EQ(tile.frequency_hz, 1.2e9);
}

TEST(Components, SystemTotals) {
  const PimConfig pim;
  EXPECT_EQ(pim.pes, 36);
  EXPECT_EQ(pim.total_crossbars(), 36LL * 4 * 96);
  EXPECT_NEAR(pim.system_area_mm2(), 36 * 4 * 0.2822, 1e-6);
}

TEST(Adc, ReconfigurableRangeClampsAndScales) {
  const ReconfigurableAdc adc;
  EXPECT_EQ(adc.clamp_bits(2), 3);
  EXPECT_EQ(adc.clamp_bits(5), 5);
  EXPECT_EQ(adc.clamp_bits(9), 6);
  EXPECT_GT(adc.conversion_energy_j(6), adc.conversion_energy_j(3));
  EXPECT_NEAR(adc.conversion_latency_s(6) / adc.conversion_latency_s(3),
              2.0, 1e-12);
}

TEST(Noc, XyHopsAreManhattan) {
  const NocModel noc(6, 6);
  EXPECT_EQ(noc.hops(0, 0), 0);
  EXPECT_EQ(noc.hops(0, 5), 5);    // same row
  EXPECT_EQ(noc.hops(0, 30), 5);   // same column
  EXPECT_EQ(noc.hops(0, 35), 10);  // opposite corner
  EXPECT_EQ(noc.hops(7, 14), noc.hops(14, 7));  // symmetric
}

TEST(Noc, AverageHopsMatchesClosedFormApproximation) {
  const NocModel noc(6, 6);
  // Mean Manhattan distance on an n x n mesh ~ 2*(n^2-1)/(3n) = 3.888...
  EXPECT_NEAR(noc.average_hops(), 2.0 * 35.0 / 18.0, 1e-9);
}

TEST(Noc, TransferPipelinesFlits) {
  const NocModel noc(6, 6);
  const auto p = noc.params();
  const auto one_flit = noc.transfer(32, 4);
  EXPECT_DOUBLE_EQ(one_flit.energy_j, p.hop_energy_per_flit_j * 4);
  EXPECT_DOUBLE_EQ(one_flit.latency_s, p.hop_latency_s * 4);
  const auto ten_flits = noc.transfer(320, 4);
  EXPECT_DOUBLE_EQ(ten_flits.energy_j, p.hop_energy_per_flit_j * 40);
  // Pipelined: 4 + 10 - 1 hops of latency, not 40.
  EXPECT_DOUBLE_EQ(ten_flits.latency_s, p.hop_latency_s * 13);
  EXPECT_DOUBLE_EQ(noc.transfer(0, 4).energy_j, 0.0);
}

TEST(Noc, HopDistanceIsAMetric) {
  const NocModel noc(6, 6);
  for (int a = 0; a < noc.nodes(); ++a) {
    EXPECT_EQ(noc.hops(a, a), 0);
    for (int b = 0; b < noc.nodes(); ++b) {
      EXPECT_EQ(noc.hops(a, b), noc.hops(b, a));
      EXPECT_GE(noc.hops(a, b), a == b ? 0 : 1);
      // Triangle inequality through every relay.
      for (int c = 0; c < noc.nodes(); c += 7)
        EXPECT_LE(noc.hops(a, b), noc.hops(a, c) + noc.hops(c, b));
    }
  }
}

TEST(Noc, TransferIsMonotoneInPayloadAndDistance) {
  const NocModel noc(6, 6);
  const auto small_near = noc.transfer(64, 1);
  const auto big_near = noc.transfer(4096, 1);
  const auto small_far = noc.transfer(64, 10);
  EXPECT_GT(big_near.energy_j, small_near.energy_j);
  EXPECT_GT(big_near.latency_s, small_near.latency_s);
  EXPECT_GT(small_far.energy_j, small_near.energy_j);
  EXPECT_GT(small_far.latency_s, small_near.latency_s);
  // Zero payload moves nothing; zero hops costs nothing.
  EXPECT_DOUBLE_EQ(noc.transfer(0, 5).latency_s, 0.0);
  EXPECT_DOUBLE_EQ(noc.transfer(512, 0).energy_j, 0.0);
  EXPECT_DOUBLE_EQ(noc.transfer(512, 0).latency_s, 0.0);
}

TEST(System, MapsVgg11WithinCapacity) {
  const SystemModel system{PimConfig{}};
  const auto mapping = system.map(dnn::make_vgg11(data::DatasetKind::kCifar10));
  EXPECT_EQ(mapping.placements.size(), 10u);
  EXPECT_GT(mapping.crossbars_used, 0);
  EXPECT_LE(mapping.utilization, 1.0);
  EXPECT_GT(mapping.noc_per_inference.energy_j, 0.0);
  // Placements cover increasing layers in order.
  for (std::size_t i = 0; i < mapping.placements.size(); ++i)
    EXPECT_EQ(mapping.placements[i].layer_index, static_cast<int>(i));
}

TEST(System, SmallerCrossbarsNeedMoreOfThem) {
  const SystemModel system{PimConfig{}};
  const auto model = dnn::make_vgg11(data::DatasetKind::kCifar10);
  const auto at128 = system.map(model, 128);
  const auto at64 = system.map(model, 64);
  const auto at32 = system.map(model, 32);
  EXPECT_GT(at64.crossbars_used, at128.crossbars_used);
  EXPECT_GT(at32.crossbars_used, at64.crossbars_used);
}

TEST(System, PlacementInvariants) {
  const PimConfig pim;
  const SystemModel system{pim};
  const auto model = dnn::make_vgg11(data::DatasetKind::kCifar10);
  const auto mapping = system.map(model);
  // Every layer placed exactly once, in order, on a real PE.
  ASSERT_EQ(mapping.placements.size(), model.layers.size());
  for (std::size_t i = 0; i < mapping.placements.size(); ++i) {
    EXPECT_EQ(mapping.placements[i].layer_index, static_cast<int>(i));
    EXPECT_GT(mapping.placements[i].crossbars, 0);
    EXPECT_GE(mapping.placements[i].pe, 0);
    EXPECT_LT(mapping.placements[i].pe, pim.pes);
  }
  // The per-PE fill ledger accounts every used crossbar and never exceeds
  // a PE's capacity.
  ASSERT_EQ(mapping.pe_load.size(), static_cast<std::size_t>(pim.pes));
  const std::int64_t per_pe = system.crossbars_per_pe();
  std::int64_t filled = 0;
  for (std::int64_t load : mapping.pe_load) {
    EXPECT_GE(load, 0);
    EXPECT_LE(load, per_pe);
    filled += load;
  }
  EXPECT_EQ(filled, mapping.crossbars_used);
}

TEST(System, MapOntoFullSpanMatchesMapAndSubsetStaysInside) {
  const PimConfig pim;
  const SystemModel system{pim};
  const auto model = dnn::make_vgg11(data::DatasetKind::kCifar10);
  std::vector<int> all(static_cast<std::size_t>(pim.pes));
  for (int p = 0; p < pim.pes; ++p) all[static_cast<std::size_t>(p)] = p;
  const auto whole = system.map(model);
  const auto onto = system.map_onto(model, all);
  ASSERT_EQ(onto.placements.size(), whole.placements.size());
  for (std::size_t i = 0; i < whole.placements.size(); ++i)
    EXPECT_EQ(onto.placements[i].pe, whole.placements[i].pe);
  EXPECT_EQ(onto.crossbars_used, whole.crossbars_used);
  EXPECT_EQ(onto.noc_per_inference.energy_j,
            whole.noc_per_inference.energy_j);
  EXPECT_EQ(onto.noc_per_inference.latency_s,
            whole.noc_per_inference.latency_s);
  EXPECT_EQ(onto.pe_load, whole.pe_load);

  // A restricted span only ever touches its own PEs (spill wraps inside).
  const std::vector<int> block = {14, 15, 20, 21};
  const auto sub = system.map_onto(model, block);
  ASSERT_EQ(sub.placements.size(), model.layers.size());
  std::int64_t in_block = 0;
  for (std::size_t pe = 0; pe < sub.pe_load.size(); ++pe) {
    const bool member =
        std::find(block.begin(), block.end(), static_cast<int>(pe)) !=
        block.end();
    if (!member) {
      EXPECT_EQ(sub.pe_load[pe], 0) << "pe " << pe;
    }
    in_block += sub.pe_load[pe];
  }
  EXPECT_EQ(in_block, sub.crossbars_used);
  for (const LayerPlacement& p : sub.placements)
    EXPECT_NE(std::find(block.begin(), block.end(), p.pe), block.end());
}

TEST(Pipeline, InterLayerOverlapFolding) {
  // One stage (or none): nothing overlaps.
  const double single[] = {3.0};
  const auto one = interlayer_pipeline(single);
  EXPECT_EQ(one.stages, 1);
  EXPECT_DOUBLE_EQ(one.fill_s, 3.0);
  EXPECT_DOUBLE_EQ(one.overlap_factor, 1.0);
  EXPECT_DOUBLE_EQ(interlayer_pipeline({}).overlap_factor, 1.0);
  // Balanced stages overlap best: bottleneck/fill = 1/n.
  const double balanced[] = {2.0, 2.0, 2.0, 2.0};
  const auto four = interlayer_pipeline(balanced);
  EXPECT_DOUBLE_EQ(four.fill_s, 8.0);
  EXPECT_DOUBLE_EQ(four.bottleneck_s, 2.0);
  EXPECT_DOUBLE_EQ(four.overlap_factor, 0.25);
  // A dominant stage caps the benefit at its share of the fill.
  const double skewed[] = {1.0, 6.0, 1.0};
  const auto skew = interlayer_pipeline(skewed);
  EXPECT_DOUBLE_EQ(skew.bottleneck_s, 6.0);
  EXPECT_DOUBLE_EQ(skew.overlap_factor, 0.75);
  EXPECT_GT(skew.overlap_factor, four.overlap_factor);
}

TEST(Overhead, PaperPercentages) {
  const OverheadModel overhead(OverheadParams{}, PimConfig{});
  // Sec. V-E: controller 1.8% of tile, online learning 0.2% of system,
  // buffer 0.35 KB.
  EXPECT_NEAR(overhead.controller_tile_fraction(), 0.018, 0.0005);
  EXPECT_NEAR(overhead.learning_system_fraction(), 0.002, 0.0005);
  EXPECT_NEAR(overhead.buffer_bytes(), 350.0, 1.0);
}

TEST(Overhead, PredictionAndUpdateCosts) {
  const OverheadModel overhead(OverheadParams{}, PimConfig{});
  const double latency = 1e-3;
  EXPECT_NEAR(overhead.prediction_energy_j(latency), 0.14e-3 * 1e-3, 1e-12);
  EXPECT_NEAR(overhead.prediction_latency_s(latency), 0.9e-5, 1e-12);
  EXPECT_NEAR(overhead.total_update_energy_j(10), 2.2e-6, 1e-12);
}

}  // namespace
}  // namespace odin::arch
