// Tests for the analytical cost model: Eq. 1-2 proportionalities, ADC
// precision clamping, peripheral terms and reprogramming cost.
#include <gtest/gtest.h>

#include "ou/cost_model.hpp"

namespace odin::ou {
namespace {

OuCostModel make_model() {
  return OuCostModel(CostParams{}, reram::DeviceParams{});
}

OuCounts counts_of(std::int64_t total, std::int64_t max_per_xbar) {
  OuCounts c;
  c.live_blocks = total;
  c.max_blocks_per_xbar = max_per_xbar;
  c.total_ou_cycles = total;
  c.max_ou_cycles_per_xbar = max_per_xbar;
  c.occupancy = 1.0;
  return c;
}

TEST(CostParams, AdcBitsFollowTableI) {
  const CostParams p;
  EXPECT_EQ(p.adc_bits(4), 3);    // clamped up to the 3-bit floor
  EXPECT_EQ(p.adc_bits(8), 3);
  EXPECT_EQ(p.adc_bits(9), 4);    // ceil(log2 9) = 4
  EXPECT_EQ(p.adc_bits(16), 4);
  EXPECT_EQ(p.adc_bits(32), 5);
  EXPECT_EQ(p.adc_bits(64), 6);
  EXPECT_EQ(p.adc_bits(128), 6);  // clamped to the 6-bit ceiling
}

TEST(CostModel, EnergyScalesLinearlyWithOuCycles) {
  const auto m = make_model();
  const OuConfig cfg{16, 16};
  const auto c1 = m.layer_cost(counts_of(100, 50), cfg);
  const auto c2 = m.layer_cost(counts_of(200, 50), cfg);
  EXPECT_NEAR(c2.total().energy_j, 2.0 * c1.total().energy_j, 1e-18);
  // Latency depends on the bottleneck crossbar, unchanged here.
  EXPECT_DOUBLE_EQ(c2.total().latency_s, c1.total().latency_s);
}

TEST(CostModel, LatencyScalesWithBottleneckCrossbar) {
  const auto m = make_model();
  const OuConfig cfg{16, 16};
  const auto c1 = m.layer_cost(counts_of(100, 25), cfg);
  const auto c2 = m.layer_cost(counts_of(100, 50), cfg);
  EXPECT_NEAR(c2.total().latency_s, 2.0 * c1.total().latency_s, 1e-15);
  EXPECT_DOUBLE_EQ(c2.total().energy_j, c1.total().energy_j);
}

TEST(CostModel, AdcEnergyFollowsEq2Shape) {
  // Eq. 2: E_adc ~ bits * R * C per cycle. Compare two configs with equal
  // cycle counts.
  const auto m = make_model();
  const auto counts = counts_of(10, 10);
  const auto a = m.layer_cost(counts, {16, 16});  // bits 4, R*C = 256
  const auto b = m.layer_cost(counts, {32, 16});  // bits 5, R*C = 512
  EXPECT_NEAR(b.adc.energy_j / a.adc.energy_j, (5.0 * 512) / (4.0 * 256),
              1e-9);
}

TEST(CostModel, AdcLatencyFollowsEq1Shape) {
  const auto m = make_model();
  const auto counts = counts_of(10, 10);
  const auto a = m.layer_cost(counts, {16, 16});  // bits 4, C 16
  const auto b = m.layer_cost(counts, {16, 32});  // bits 4, C 32
  EXPECT_NEAR(b.adc.latency_s / a.adc.latency_s, 2.0, 1e-9);
}

TEST(CostModel, FixedCycleCostsPenalizeFineOus) {
  // Same work (R*C*cycles constant) split into 4x more cycles must cost
  // more peripheral energy — the effect that makes 8x4 homogeneous OUs
  // energy-hungry (paper Sec. V-C).
  const auto m = make_model();
  const auto coarse = m.layer_cost(counts_of(100, 100), {16, 16});
  const auto fine = m.layer_cost(counts_of(400, 400), {8, 8});
  EXPECT_GT(fine.peripheral.energy_j, coarse.peripheral.energy_j);
  EXPECT_GT(fine.total().latency_s, coarse.total().latency_s);
}

TEST(CostModel, EdpIsEnergyTimesLatency) {
  const auto m = make_model();
  const auto counts = counts_of(123, 45);
  const OuConfig cfg{32, 8};
  const auto cost = m.layer_cost(counts, cfg);
  EXPECT_DOUBLE_EQ(m.layer_edp(counts, cfg),
                   cost.total().energy_j * cost.total().latency_s);
}

TEST(CostModel, ReprogramCostScalesWithCellsAndRows) {
  const auto m = make_model();
  const reram::DeviceParams dev;
  const auto c = m.reprogram_cost(1000, 64);
  EXPECT_DOUBLE_EQ(c.energy_j, 1000 * dev.write_energy_per_cell_j);
  EXPECT_DOUBLE_EQ(c.latency_s, 64 * dev.write_latency_per_row_s);
  const auto c2 = m.reprogram_cost(2000, 128);
  EXPECT_DOUBLE_EQ(c2.energy_j, 2.0 * c.energy_j);
  EXPECT_DOUBLE_EQ(c2.latency_s, 2.0 * c.latency_s);
}

TEST(CostModel, ComponentBreakdownSumsToTotal) {
  const auto m = make_model();
  const auto counts = counts_of(10, 5);
  const auto cost = m.layer_cost(counts, {16, 8});
  EXPECT_DOUBLE_EQ(cost.total().energy_j,
                   cost.adc.energy_j + cost.peripheral.energy_j);
  EXPECT_DOUBLE_EQ(cost.total().latency_s,
                   cost.adc.latency_s + cost.peripheral.latency_s);
  EXPECT_GT(cost.adc.energy_j, 0.0);
  EXPECT_GT(cost.peripheral.energy_j, 0.0);
}

}  // namespace
}  // namespace odin::ou
