// Tests for the synthetic dataset substrate (CIFAR/TinyImageNet-shaped).
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"

namespace odin::data {
namespace {

TEST(DatasetSpec, PaperShapes) {
  const auto c10 = DatasetSpec::for_kind(DatasetKind::kCifar10);
  EXPECT_EQ(c10.classes, 10);
  EXPECT_EQ(c10.height, 32);
  EXPECT_EQ(c10.pixels(), 3u * 32 * 32);
  const auto c100 = DatasetSpec::for_kind(DatasetKind::kCifar100);
  EXPECT_EQ(c100.classes, 100);
  const auto tin = DatasetSpec::for_kind(DatasetKind::kTinyImageNet);
  EXPECT_EQ(tin.classes, 200);
  EXPECT_EQ(tin.height, 64);
}

TEST(SyntheticDataset, SamplesAreDeterministicByIndex) {
  SyntheticDataset ds(DatasetSpec::for_kind(DatasetKind::kCifar10), 42);
  const Sample a = ds.sample(7);
  const Sample b = ds.sample(7);
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.image.size(), b.image.size());
  for (std::size_t i = 0; i < a.image.size(); ++i)
    EXPECT_DOUBLE_EQ(a.image.data[i], b.image.data[i]);
}

TEST(SyntheticDataset, DifferentSeedsGiveDifferentData) {
  const auto spec = DatasetSpec::for_kind(DatasetKind::kCifar10);
  SyntheticDataset a(spec, 1), b(spec, 2);
  const Sample sa = a.sample(0);
  const Sample sb = b.sample(0);
  bool differs = sa.label != sb.label;
  for (std::size_t i = 0; !differs && i < sa.image.size(); ++i)
    differs = sa.image.data[i] != sb.image.data[i];
  EXPECT_TRUE(differs);
}

TEST(SyntheticDataset, LabelsSpanAllClasses) {
  SyntheticDataset ds(DatasetSpec::for_kind(DatasetKind::kCifar10), 3);
  std::set<int> seen;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const int label = ds.sample(i).label;
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
    seen.insert(label);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SyntheticDataset, FeatureDatasetShape) {
  SyntheticDataset ds(DatasetSpec::for_kind(DatasetKind::kCifar10), 5);
  const auto feats = ds.as_feature_dataset(20, 4);
  EXPECT_EQ(feats.inputs.rows(), 20u);
  EXPECT_EQ(feats.inputs.cols(), 3u * 8 * 8);
  EXPECT_EQ(feats.inputs.cols(), ds.feature_count(4));
  ASSERT_EQ(feats.labels.size(), 1u);
  EXPECT_EQ(feats.labels[0].size(), 20u);
}

TEST(SyntheticDataset, ClassesAreSeparableByNearestPrototype) {
  // A 1-nearest-centroid classifier on training features should beat chance
  // by a wide margin — this is the property the Monte-Carlo accuracy
  // evaluator depends on.
  SyntheticDataset ds(DatasetSpec::for_kind(DatasetKind::kCifar10), 11);
  const auto train = ds.as_feature_dataset(400, 4);
  const std::size_t dim = train.inputs.cols();
  std::vector<std::vector<double>> centroid(10,
                                            std::vector<double>(dim, 0.0));
  std::vector<int> count(10, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const int y = train.labels[0][i];
    ++count[static_cast<std::size_t>(y)];
    auto row = train.inputs.row(i);
    for (std::size_t f = 0; f < dim; ++f)
      centroid[static_cast<std::size_t>(y)][f] += row[f];
  }
  for (int k = 0; k < 10; ++k)
    if (count[k] > 0)
      for (double& v : centroid[static_cast<std::size_t>(k)])
        v /= count[static_cast<std::size_t>(k)];

  // Held-out: indices beyond the training range.
  int hits = 0, total = 0;
  SyntheticDataset held(DatasetSpec::for_kind(DatasetKind::kCifar10), 11);
  const auto all = held.as_feature_dataset(500, 4);
  for (std::size_t i = 400; i < 500; ++i, ++total) {
    double best = 1e300;
    int arg = -1;
    for (int k = 0; k < 10; ++k) {
      double d = 0.0;
      auto row = all.inputs.row(i);
      for (std::size_t f = 0; f < dim; ++f) {
        const double diff = row[f] - centroid[static_cast<std::size_t>(k)][f];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        arg = k;
      }
    }
    if (arg == all.labels[0][i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.6);  // chance = 0.1
}

}  // namespace
}  // namespace odin::data
