// Tests for the MobileNetV1 extension workload and its block-diagonal
// depthwise layers.
#include <gtest/gtest.h>

#include "dnn/pruning.hpp"
#include "dnn/zoo.hpp"
#include "ou/mapped_model.hpp"

namespace odin::dnn {
namespace {

TEST(MobileNet, ArchitectureShape) {
  const DnnModel m = make_mobilenetv1(data::DatasetKind::kCifar10);
  // conv1 + 13 x (dw + pw) + fc.
  EXPECT_EQ(m.layers.size(), 1u + 26 + 1);
  EXPECT_EQ(m.family, Family::kMobileNet);
  EXPECT_EQ(family_name(m.family), "MobileNet");
  EXPECT_EQ(m.layers.back().fan_in, 1024);
  EXPECT_EQ(m.layers.back().outputs, 10);
  // total_weights() counts lowered-matrix slots; the block-diagonal
  // depthwise layers inflate that (9C^2 slots for 9C real weights). The
  // real parameter count shows up as nonzeros after pruning.
  const PrunedModel pm = prune_model(m, 3);
  EXPECT_GT(pm.total_nonzeros(), 1'000'000);
  EXPECT_LT(pm.total_nonzeros(), 4'000'000);  // ~3.2M params, ~75% kept
}

TEST(MobileNet, DepthwiseLayersAreBlockDiagonalShaped) {
  const DnnModel m = make_mobilenetv1(data::DatasetKind::kCifar10);
  int depthwise_count = 0;
  for (const auto& l : m.layers) {
    if (l.type != LayerType::kDepthwise) continue;
    ++depthwise_count;
    EXPECT_EQ(l.fan_in, l.in_channels * 9) << l.name;
    EXPECT_EQ(l.outputs, l.in_channels) << l.name;
  }
  EXPECT_EQ(depthwise_count, 13);
}

TEST(MobileNet, DepthwisePruningIsBlockDiagonal) {
  const DnnModel m = make_mobilenetv1(data::DatasetKind::kCifar10);
  const LayerDescriptor* dw = nullptr;
  for (const auto& l : m.layers)
    if (l.type == LayerType::kDepthwise) {
      dw = &l;
      break;
    }
  ASSERT_NE(dw, nullptr);
  const WeightPattern p = prune_layer(*dw, 42);
  // Bits only inside the diagonal blocks: column c uses rows [9c, 9c+9).
  for (int c = 0; c < dw->outputs; c += 7) {
    EXPECT_TRUE(p.block_live(c * 9, c, 9, 1)) << c;
    if (c > 0) EXPECT_FALSE(p.block_live(0, c, 9, 1)) << c;
  }
  // Structural sparsity ~ 1 - 0.9/C.
  EXPECT_GT(p.sparsity(), 1.0 - 2.0 / dw->outputs);
}

TEST(MobileNet, DepthwiseStructureRewardsFineOus) {
  // With 1 - 1/C structural sparsity, fine OUs skip almost everything
  // while coarse OUs are forced to touch every diagonal block.
  const PrunedModel pm =
      prune_model(make_mobilenetv1(data::DatasetKind::kCifar10), 7);
  ou::MappedModel mapped(std::move(pm), 128);
  const dnn::DnnModel& m = mapped.model();
  for (std::size_t j = 0; j < m.layers.size(); ++j) {
    if (m.layers[j].type != LayerType::kDepthwise) continue;
    const auto& fine = mapped.mapping(j).counts({4, 4});
    const auto& coarse = mapped.mapping(j).counts({64, 64});
    // Occupancy (live fraction) collapses for fine blocks.
    EXPECT_LT(fine.occupancy, 0.35) << m.layers[j].name;
    EXPECT_GT(coarse.occupancy, fine.occupancy) << m.layers[j].name;
    break;  // one representative layer suffices
  }
}

TEST(MobileNet, PrunedModelSparsityIsDominatedByStructure) {
  const PrunedModel pm =
      prune_model(make_mobilenetv1(data::DatasetKind::kCifar10), 11);
  for (std::size_t j = 0; j < pm.model.layers.size(); ++j) {
    const auto& l = pm.model.layers[j];
    if (l.type == LayerType::kDepthwise)
      EXPECT_GT(l.weight_sparsity, 0.95) << l.name;
  }
}

}  // namespace
}  // namespace odin::dnn
