// Unit tests for src/common: RNG determinism, math helpers, table emitter.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace odin::common {
namespace {

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersForDifferentSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, NormalHasApproximatelyUnitMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentConsumption) {
  Rng parent1(99);
  Rng child1 = parent1.fork(3);
  // A fork with the same stream id from an identically-seeded parent in the
  // same state yields the same child stream.
  Rng parent2(99);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(128, 16), 8);
  EXPECT_EQ(ceil_div(129, 16), 9);
}

TEST(Math, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(2), 1);
  EXPECT_EQ(log2_exact(128), 7);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(9));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Math, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Math, Geomean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Math, LogspaceEndpointsAndMonotone) {
  const auto xs = logspace(1.0, 1e8, 9);
  ASSERT_EQ(xs.size(), 9u);
  EXPECT_DOUBLE_EQ(xs.front(), 1.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1e8);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_GT(xs[i], xs[i - 1]);
    // Log-spacing: constant ratio.
    EXPECT_NEAR(xs[i] / xs[i - 1], 10.0, 1e-6);
  }
}

TEST(Math, SoftmaxSumsToOneAndIsStable) {
  std::vector<double> xs{1000.0, 1001.0, 1002.0};  // would overflow naively
  softmax_inplace(xs);
  double sum = 0.0;
  for (double x : xs) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(xs[2], xs[1]);
  EXPECT_GT(xs[1], xs[0]);
}

TEST(Math, Argmax) {
  const std::vector<double> xs{0.1, 0.7, 0.2};
  EXPECT_EQ(argmax(xs), 1u);
  const std::vector<double> ties{0.5, 0.5};
  EXPECT_EQ(argmax(ties), 0u);  // first wins
}

TEST(EnergyLatency, AccumulatesAndEdp) {
  EnergyLatency a{.energy_j = 2.0, .latency_s = 3.0};
  EnergyLatency b{.energy_j = 1.0, .latency_s = 0.5};
  const EnergyLatency c = a + b;
  EXPECT_DOUBLE_EQ(c.energy_j, 3.0);
  EXPECT_DOUBLE_EQ(c.latency_s, 3.5);
  EXPECT_DOUBLE_EQ(c.edp(), 10.5);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"a", "bb"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Units, Magnitudes) {
  EXPECT_DOUBLE_EQ(3.0 * units::ns, 3e-9);
  EXPECT_DOUBLE_EQ(2.0 * units::pJ, 2e-12);
  EXPECT_DOUBLE_EQ(333.0 * units::uS, 333e-6);
}

}  // namespace
}  // namespace odin::common
