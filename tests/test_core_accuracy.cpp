// Tests for the accuracy surrogate and the Monte-Carlo noise-injection
// evaluator, including the cross-validation between the two.
#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  AccuracyModel accuracy{AccuracyParams{}};
};

TEST(AccuracyModel, NoLossWithinBudget) {
  const AccuracyModel m{AccuracyParams{}};
  EXPECT_DOUBLE_EQ(m.loss_from_excess(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.loss_from_excess(-1.0), 0.0);
  EXPECT_GT(m.loss_from_excess(0.001), 0.0);
}

TEST(AccuracyModel, LossIsMonotoneAndSaturates) {
  const AccuracyModel m{AccuracyParams{}};
  double prev = -1.0;
  for (double excess = 0.0; excess <= 0.1; excess += 0.005) {
    const double l = m.loss_from_excess(excess);
    EXPECT_GE(l, prev);
    prev = l;
  }
  EXPECT_DOUBLE_EQ(m.loss_from_excess(m.params().excess_saturation),
                   m.params().max_drop);
  EXPECT_DOUBLE_EQ(m.loss_from_excess(5.0), m.params().max_drop);
}

TEST(AccuracyModel, IdealAtT0WithinBudgetConfig) {
  Fixture fx;
  // 8x8 satisfies both constraints at t0 even for the most sensitive
  // layer: accuracy is exactly ideal.
  const double acc = fx.accuracy.estimate_homogeneous(fx.model, {8, 8}, 1.0,
                                                      fx.nonideal);
  EXPECT_DOUBLE_EQ(acc, fx.accuracy.params().ideal_accuracy);
  // 16x16 slightly exceeds the IR budget of the earliest layers: a small
  // (but only small) penalty, matching "negligible loss" in the paper.
  const double acc16 = fx.accuracy.estimate_homogeneous(fx.model, {16, 16},
                                                        1.0, fx.nonideal);
  EXPECT_LE(acc16, fx.accuracy.params().ideal_accuracy);
  EXPECT_GT(acc16, 0.97 * fx.accuracy.params().ideal_accuracy);
}

TEST(AccuracyModel, DegradesOverTimeWithoutReprogramming) {
  // Fig. 7's "w/o reprogramming" curves. Early on the 16x16 IR excess
  // shrinks slightly with the drifting conductance (less current, less IR
  // drop), so the requirement is: monotone decay once the drift term
  // dominates (t >= 1e6 s), and a severe net drop by the horizon's end.
  Fixture fx;
  double prev = 1.0;
  for (double t : {1e6, 3e6, 1e7, 3e7, 1e8}) {
    const double acc = fx.accuracy.estimate_homogeneous(fx.model, {16, 16},
                                                        t, fx.nonideal);
    EXPECT_LE(acc, prev + 1e-12);
    prev = acc;
  }
  EXPECT_LT(prev, fx.accuracy.estimate_homogeneous(fx.model, {16, 16}, 1.0,
                                                   fx.nonideal));
  // By the end of the horizon the drop is severe (paper Fig. 7: 22% for
  // 16x16 without reprogramming).
  const double final_acc = fx.accuracy.estimate_homogeneous(
      fx.model, {16, 16}, 1e8, fx.nonideal);
  const double drop = fx.accuracy.params().ideal_accuracy - final_acc;
  EXPECT_GT(drop, 0.12);
  EXPECT_LT(drop, 0.45);
}

TEST(AccuracyModel, CoarserOusLoseMoreAccuracy) {
  Fixture fx;
  const double t = 1e7;
  const double fine = fx.accuracy.estimate_homogeneous(fx.model, {4, 4}, t,
                                                       fx.nonideal);
  const double coarse = fx.accuracy.estimate_homogeneous(fx.model, {64, 64},
                                                         t, fx.nonideal);
  EXPECT_GT(fine, coarse);
}

TEST(AccuracyModel, ExcessWeightsSensitiveLayersMore) {
  Fixture fx;
  const std::size_t n = fx.model.layer_count();
  // Coarse OU only on the first (most sensitive) layer vs only on the last.
  std::vector<ou::OuConfig> first_coarse(n, ou::OuConfig{4, 4});
  std::vector<ou::OuConfig> last_coarse(n, ou::OuConfig{4, 4});
  first_coarse.front() = {64, 64};
  last_coarse.back() = {64, 64};
  const double excess_first =
      fx.accuracy.effective_excess(fx.model, first_coarse, 1.0, fx.nonideal);
  const double excess_last =
      fx.accuracy.effective_excess(fx.model, last_coarse, 1.0, fx.nonideal);
  EXPECT_GT(excess_first, excess_last);
}

TEST(AccuracyModel, OdinStyleConfigurationsIncurNoLoss) {
  // Any per-layer configuration satisfying both constraints has zero
  // excess — the mechanism behind Odin's flat Fig. 7 curve.
  Fixture fx;
  const int n = static_cast<int>(fx.model.layer_count());
  for (double t : {1.0, 1e4, 1e7, 5e7}) {
    std::vector<ou::OuConfig> configs(fx.model.layer_count(),
                                      ou::OuConfig{4, 4});
    bool all_ok = true;
    for (int j = 0; j < n; ++j)
      all_ok = all_ok &&
               fx.nonideal.feasible(t, configs[static_cast<std::size_t>(j)],
                                    fx.nonideal.layer_sensitivity(j, n));
    if (!all_ok) continue;  // reprogram regime
    EXPECT_DOUBLE_EQ(
        fx.accuracy.effective_excess(fx.model, configs, t, fx.nonideal), 0.0)
        << t;
  }
}

class MonteCarloFixture : public ::testing::Test {
 protected:
  static MonteCarloAccuracy& evaluator() {
    static data::SyntheticDataset dataset(
        data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 321);
    static MonteCarloAccuracy mc(dataset);
    return mc;
  }
};

TEST_F(MonteCarloFixture, ReferenceModelLearnsTheTask) {
  EXPECT_GT(evaluator().ideal_accuracy(), 0.75);  // chance = 0.1
}

TEST_F(MonteCarloFixture, ZeroNoiseMatchesIdeal) {
  EXPECT_DOUBLE_EQ(evaluator().accuracy_under(0.0, 0.0),
                   evaluator().ideal_accuracy());
}

TEST_F(MonteCarloFixture, RestoresWeightsBetweenCalls) {
  const double before = evaluator().ideal_accuracy();
  evaluator().accuracy_under(0.3, 0.2);
  EXPECT_DOUBLE_EQ(evaluator().ideal_accuracy(), before);
}

TEST_F(MonteCarloFixture, SevereErrorsCollapseAccuracy) {
  const double ideal = evaluator().ideal_accuracy();
  double severe = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    severe += evaluator().accuracy_under(0.6, 0.5, seed);
  severe /= 3.0;
  EXPECT_LT(severe, ideal - 0.2);
}

TEST_F(MonteCarloFixture, DegradationIsMonotoneInNoiseOnAverage) {
  // Validates the surrogate's monotone shape empirically (averaged over
  // seeds to smooth Monte-Carlo variance).
  auto mean_acc = [&](double drift, double ir) {
    double acc = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
      acc += evaluator().accuracy_under(drift, ir, seed);
    return acc / 5.0;
  };
  const double mild = mean_acc(0.05, 0.02);
  const double medium = mean_acc(0.25, 0.15);
  const double severe = mean_acc(0.55, 0.4);
  EXPECT_GE(mild, medium - 0.05);
  EXPECT_GT(mild, severe);
  EXPECT_GE(medium, severe - 0.05);
}

}  // namespace
}  // namespace odin::core
