// Tests for the homogeneous-OU baseline runners.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
};

TEST(Baselines, PaperConfigsArePresent) {
  const auto configs = paper_baseline_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0], (ou::OuConfig{16, 16}));
  EXPECT_EQ(configs[1], (ou::OuConfig{16, 4}));
  EXPECT_EQ(configs[2], (ou::OuConfig{9, 8}));
  EXPECT_EQ(configs[3], (ou::OuConfig{8, 4}));
}

TEST(HomogeneousRunner, InferenceCostIsTimeInvariant) {
  Fixture fx;
  HomogeneousRunner runner(fx.model, fx.nonideal, fx.cost, {16, 16});
  const auto r1 = runner.run_inference(1.0);
  const auto r2 = runner.run_inference(100.0);
  EXPECT_DOUBLE_EQ(r1.inference.energy_j, r2.inference.energy_j);
  EXPECT_DOUBLE_EQ(r1.inference.latency_s, r2.inference.latency_s);
}

TEST(HomogeneousRunner, ReprogramsAtItsOwnCrossing) {
  Fixture fx;
  HomogeneousRunner runner(fx.model, fx.nonideal, fx.cost, {16, 16});
  // 16x16 crossing is near 2e6 s with the calibrated constants.
  EXPECT_FALSE(runner.run_inference(1e6).reprogrammed);
  EXPECT_TRUE(runner.run_inference(4e6).reprogrammed);
  EXPECT_EQ(runner.reprogram_count(), 1);
  EXPECT_DOUBLE_EQ(runner.programmed_at_s(), 4e6);
}

TEST(HomogeneousRunner, CoarserOusReprogramMoreOften) {
  // The Fig. 6 ordering: 16x16 reprograms far more than 8x4 over the
  // horizon.
  Fixture fx;
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 300};
  HomogeneousRunner coarse(fx.model, fx.nonideal, fx.cost, {16, 16});
  HomogeneousRunner fine(fx.model, fx.nonideal, fx.cost, {8, 4});
  for (double t : run_schedule(horizon)) {
    coarse.run_inference(t);
    fine.run_inference(t);
  }
  EXPECT_GT(coarse.reprogram_count(), 10 * fine.reprogram_count());
  EXPECT_GE(fine.reprogram_count(), 1);
}

TEST(HomogeneousRunner, DisabledReprogrammingNeverFires) {
  Fixture fx;
  HomogeneousRunner runner(fx.model, fx.nonideal, fx.cost, {16, 16},
                           /*reprogram_enabled=*/false);
  for (double t : {1.0, 1e4, 1e7, 1e8}) {
    const auto run = runner.run_inference(t);
    EXPECT_FALSE(run.reprogrammed);
  }
  EXPECT_EQ(runner.reprogram_count(), 0);
}

TEST(HomogeneousRunner, FinerOuCostsMoreEnergyPerInference) {
  // With the per-cycle fixed costs, 8x4 pays more energy per inference
  // than 16x16 on the same workload (paper Sec. V-C).
  Fixture fx;
  HomogeneousRunner coarse(fx.model, fx.nonideal, fx.cost, {16, 16});
  HomogeneousRunner fine(fx.model, fx.nonideal, fx.cost, {8, 4});
  EXPECT_GT(fine.inference_cost().energy_j,
            coarse.inference_cost().energy_j);
  EXPECT_GT(fine.inference_cost().latency_s,
            coarse.inference_cost().latency_s);
}

TEST(HomogeneousRunner, FullReprogramCostMatchesModelTotals) {
  Fixture fx;
  HomogeneousRunner runner(fx.model, fx.nonideal, fx.cost, {9, 8});
  common::EnergyLatency manual;
  for (std::size_t j = 0; j < fx.model.layer_count(); ++j)
    manual += fx.cost.reprogram_cost(fx.model.mapping(j));
  EXPECT_DOUBLE_EQ(runner.full_reprogram_cost().energy_j, manual.energy_j);
}

}  // namespace
}  // namespace odin::core
