// Tests for the horizon experiment driver and the shared Setup.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

TEST(RunSchedule, LogSpacedWithExactEndpoints) {
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 9};
  const auto schedule = run_schedule(horizon);
  ASSERT_EQ(schedule.size(), 9u);
  EXPECT_DOUBLE_EQ(schedule.front(), 1.0);
  EXPECT_DOUBLE_EQ(schedule.back(), 1e8);
  for (std::size_t i = 1; i < schedule.size(); ++i)
    EXPECT_GT(schedule[i], schedule[i - 1]);
}

TEST(Setup, FactoriesAreConsistent) {
  const ::odin::core::Setup setup;
  EXPECT_DOUBLE_EQ(setup.make_nonideality().device().g_on_s,
                   setup.device.g_on_s);
  EXPECT_EQ(setup.pim.tile.crossbar_size, 128);
  const auto mapped = setup.make_mapped(testing::tiny_model());
  EXPECT_EQ(mapped.crossbar_size(), 128);
  const auto mapped64 = setup.make_mapped(testing::tiny_model(), 64);
  EXPECT_EQ(mapped64.crossbar_size(), 64);
}

TEST(SimulateHomogeneous, TotalsDecomposeExactly) {
  const ::odin::core::Setup setup;
  const auto model = setup.make_mapped(testing::tiny_model());
  const auto nonideal = setup.make_nonideality();
  const auto cost = setup.make_cost();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e6, .runs = 50};

  const auto agg = simulate_homogeneous(model, nonideal, cost, {16, 16},
                                        horizon);
  EXPECT_EQ(agg.runs, 50);
  // Inference cost is time-invariant for homogeneous OUs: totals must be
  // exactly runs x per-run cost.
  HomogeneousRunner probe(model, nonideal, cost, {16, 16});
  EXPECT_NEAR(agg.inference.energy_j,
              50 * probe.inference_cost().energy_j,
              agg.inference.energy_j * 1e-12);
  // 1e6 s is before the 16x16 crossing: no reprogram.
  EXPECT_EQ(agg.reprograms, 0);
  EXPECT_DOUBLE_EQ(agg.reprogram.energy_j, 0.0);
  EXPECT_DOUBLE_EQ(agg.total_edp(),
                   agg.total().energy_j * agg.total().latency_s);
}

TEST(SimulateHomogeneous, PerRunExtraIsAddedEveryRun) {
  const ::odin::core::Setup setup;
  const auto model = setup.make_mapped(testing::tiny_model());
  const auto nonideal = setup.make_nonideality();
  const auto cost = setup.make_cost();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 100.0, .runs = 10};
  const common::EnergyLatency extra{.energy_j = 1e-6, .latency_s = 1e-3};
  const auto with = simulate_homogeneous(model, nonideal, cost, {16, 16},
                                         horizon, extra);
  const auto without = simulate_homogeneous(model, nonideal, cost, {16, 16},
                                            horizon);
  EXPECT_NEAR(with.inference.energy_j - without.inference.energy_j, 1e-5,
              1e-15);
  EXPECT_NEAR(with.inference.latency_s - without.inference.latency_s, 1e-2,
              1e-12);
}

TEST(SimulateOdin, AccountsOverheadAndUpdates) {
  const ::odin::core::Setup setup;
  const auto model = setup.make_mapped(testing::tiny_model());
  const auto nonideal = setup.make_nonideality();
  const auto cost = setup.make_cost();
  const auto overhead = setup.make_overhead();
  OdinConfig cfg;
  cfg.buffer_capacity = 6;
  cfg.update_options.epochs = 5;
  OdinController with_ctl(model, nonideal, cost,
                          policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  OdinController without_ctl(model, nonideal, cost,
                             policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e4, .runs = 30};
  const auto with = simulate_odin(with_ctl, horizon, {}, &overhead);
  const auto without = simulate_odin(without_ctl, horizon, {}, nullptr);
  EXPECT_EQ(with.runs, 30);
  EXPECT_GT(with.inference.energy_j, without.inference.energy_j);
  EXPECT_GT(with.inference.latency_s, without.inference.latency_s);
  // The prediction latency penalty is ~0.9%: overhead must stay small.
  EXPECT_LT(with.inference.latency_s, without.inference.latency_s * 1.02);
  EXPECT_GE(with.policy_updates, 1);
}

TEST(SimulateOdin, BeatsWorstBaselineOnTotalEdp) {
  // The paper's core claim, on the tiny workload across the full horizon.
  const ::odin::core::Setup setup;
  const auto model = setup.make_mapped(testing::tiny_model());
  const auto nonideal = setup.make_nonideality();
  const auto cost = setup.make_cost();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 200};

  OdinController controller(model, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)));
  const auto odin = simulate_odin(controller, horizon);
  const auto base16 =
      simulate_homogeneous(model, nonideal, cost, {16, 16}, horizon);
  EXPECT_LT(odin.total_edp(), base16.total_edp());
  EXPECT_LT(odin.reprograms, base16.reprograms);
}

TEST(OfflinePolicyExcluding, UsesOnlyOtherFamilies) {
  // Smoke test with a cheap config: must produce a policy on the right grid
  // without touching the excluded family. (Family exclusion itself is
  // structural: paper_workloads contains VGG models whose family we drop.)
  ::odin::core::Setup setup;
  policy::OfflineTrainConfig cfg;
  cfg.time_samples = 2;
  cfg.max_examples = 60;
  cfg.train_options.epochs = 10;
  const auto policy =
      offline_policy_excluding(setup, dnn::Family::kVgg, 64, cfg);
  EXPECT_EQ(policy.grid().crossbar_size(), 64);
  EXPECT_EQ(policy.grid().levels(), 5);
}

}  // namespace
}  // namespace odin::core
