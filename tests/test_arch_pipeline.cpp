// Tests for the tile-pipeline bottleneck analysis.
#include <gtest/gtest.h>

#include "arch/pipeline.hpp"

namespace odin::arch {
namespace {

dnn::LayerDescriptor mid_layer() {
  dnn::LayerDescriptor l;
  l.name = "conv";
  l.fan_in = 1152;
  l.outputs = 256;
  l.spatial_positions = 64;
  l.kernel = 3;
  return l;
}

ou::OuCounts dense_counts(const dnn::LayerDescriptor& l, ou::OuConfig cfg,
                          int crossbar = 128) {
  // Closed-form dense counts for the bottleneck crossbar.
  const std::int64_t blocks =
      ((crossbar + cfg.rows - 1) / cfg.rows) *
      ((crossbar + cfg.cols - 1) / cfg.cols);
  ou::OuCounts c;
  c.live_blocks = blocks;
  c.max_blocks_per_xbar = blocks;
  c.total_ou_cycles = blocks * l.spatial_positions;
  c.max_ou_cycles_per_xbar = blocks * l.spatial_positions;
  c.occupancy = 1.0;
  return c;
}

TEST(Pipeline, AdcIsTheBottleneckAtStandardConfigs) {
  // Paper Sec. III-B's premise, checked rather than assumed.
  const auto layer = mid_layer();
  const ou::CostParams cost;
  for (ou::OuConfig cfg : {ou::OuConfig{16, 16}, ou::OuConfig{32, 32},
                           ou::OuConfig{8, 4}}) {
    const auto analysis =
        analyze_layer(layer, dense_counts(layer, cfg), cfg, cost);
    EXPECT_EQ(analysis.bottleneck, PipelineStage::kAdcConvert)
        << cfg.to_string();
    EXPECT_GT(analysis.share(PipelineStage::kAdcConvert), 0.5)
        << cfg.to_string();
  }
}

TEST(Pipeline, StageTimesArePositiveAndSumToTotal) {
  const auto layer = mid_layer();
  const ou::CostParams cost;
  const ou::OuConfig cfg{16, 16};
  const auto analysis =
      analyze_layer(layer, dense_counts(layer, cfg), cfg, cost);
  double sum = 0.0;
  for (int s = 0; s < static_cast<int>(PipelineStage::kCount); ++s) {
    EXPECT_GT(analysis.stage_time_s[static_cast<std::size_t>(s)], 0.0);
    sum += analysis.stage_time_s[static_cast<std::size_t>(s)];
  }
  EXPECT_DOUBLE_EQ(analysis.total_time_s, sum);
  EXPECT_LE(analysis.bottleneck_time_s, analysis.total_time_s);
  EXPECT_DOUBLE_EQ(
      analysis.bottleneck_time_s,
      analysis.stage_time_s[static_cast<int>(analysis.bottleneck)]);
}

TEST(Pipeline, FinerOusSpendMoreTimeConverting) {
  const auto layer = mid_layer();
  const ou::CostParams cost;
  const auto coarse = analyze_layer(layer, dense_counts(layer, {32, 32}),
                                    {32, 32}, cost);
  const auto fine =
      analyze_layer(layer, dense_counts(layer, {4, 4}), {4, 4}, cost);
  EXPECT_GT(fine.stage_time_s[static_cast<int>(PipelineStage::kAdcConvert)],
            coarse.stage_time_s[static_cast<int>(
                PipelineStage::kAdcConvert)]);
}

TEST(Pipeline, FetchAndWritebackAreOuIndependent) {
  const auto layer = mid_layer();
  const ou::CostParams cost;
  const auto a =
      analyze_layer(layer, dense_counts(layer, {8, 8}), {8, 8}, cost);
  const auto b =
      analyze_layer(layer, dense_counts(layer, {64, 64}), {64, 64}, cost);
  EXPECT_DOUBLE_EQ(
      a.stage_time_s[static_cast<int>(PipelineStage::kEdramFetch)],
      b.stage_time_s[static_cast<int>(PipelineStage::kEdramFetch)]);
  EXPECT_DOUBLE_EQ(
      a.stage_time_s[static_cast<int>(PipelineStage::kWriteback)],
      b.stage_time_s[static_cast<int>(PipelineStage::kWriteback)]);
}

TEST(Pipeline, StageNamesAreHuman) {
  EXPECT_EQ(stage_name(PipelineStage::kAdcConvert), "ADC convert");
  EXPECT_EQ(stage_name(PipelineStage::kEdramFetch), "eDRAM fetch");
}

}  // namespace
}  // namespace odin::arch
