// Strict environment-variable parsing (common/env.hpp) and the knobs
// built on it: ODIN_SIMD kernel dispatch (reram/batch_gemm.hpp), the
// ODIN_BATCH_MAX batch-formation cap (core/resilience.hpp) and the
// ODIN_SPARE_ROWS / ODIN_WEAR_BUDGET wear-leveling knobs
// (reram/wear_leveling.hpp) and the ODIN_SHARDS fleet shard count
// (core/fleet.hpp) and the ODIN_SCENARIO_SEED / ODIN_AUTOSCALE campaign
// knobs (core/scenario.hpp) and the ODIN_MESHES / ODIN_REPLICATION_EPOCHS
// / ODIN_FAILOVER cluster knobs (core/cluster.hpp). The contract
// (DESIGN.md §13/§14/§15/§16/§17/§18): a value must parse in full or it is
// ignored with a stderr warning and the default applies — a typo never
// silently changes behaviour.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "core/cluster.hpp"
#include "core/fleet.hpp"
#include "core/resilience.hpp"
#include "core/scenario.hpp"
#include "reram/batch_gemm.hpp"
#include "reram/wear_leveling.hpp"

namespace odin {
namespace {

/// Scoped setenv/unsetenv so a failing assertion can't leak state into
/// the next test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr)
      ::unsetenv(name);
    else
      ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

constexpr const char* kVar = "ODIN_TEST_ENV_VAR";

TEST(Env, LongParsesWholeValue) {
  long long v = -1;
  {
    ScopedEnv env(kVar, "42");
    EXPECT_TRUE(common::env_long(kVar, v));
    EXPECT_EQ(v, 42);
  }
  {
    ScopedEnv env(kVar, "-7");
    EXPECT_TRUE(common::env_long(kVar, v));
    EXPECT_EQ(v, -7);
  }
}

TEST(Env, LongRejectsGarbageAndPartialParses) {
  for (const char* bad : {"abc", "12abc", "1.5", "", " 3", "3 "}) {
    long long v = 99;
    ScopedEnv env(kVar, bad);
    EXPECT_FALSE(common::env_long(kVar, v)) << "value '" << bad << "'";
    EXPECT_EQ(v, 99) << "out must be untouched for '" << bad << "'";
  }
}

TEST(Env, LongUnsetReturnsFalse) {
  ScopedEnv env(kVar, nullptr);
  long long v = 5;
  EXPECT_FALSE(common::env_long(kVar, v));
  EXPECT_EQ(v, 5);
}

TEST(Env, StringReturnsNullWhenUnsetOrEmpty) {
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_EQ(common::env_string(kVar), nullptr);
  }
  {
    ScopedEnv env(kVar, "");
    EXPECT_EQ(common::env_string(kVar), nullptr);
  }
  {
    ScopedEnv env(kVar, "hello");
    ASSERT_NE(common::env_string(kVar), nullptr);
    EXPECT_STREQ(common::env_string(kVar), "hello");
  }
}

TEST(Env, ParseSimdModeIsStrict) {
  using reram::gemm::SimdMode;
  SimdMode mode = SimdMode::kAvx2;
  EXPECT_TRUE(reram::gemm::parse_simd_mode("scalar", mode));
  EXPECT_EQ(mode, SimdMode::kScalar);
  EXPECT_TRUE(reram::gemm::parse_simd_mode("avx2", mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);
  for (const char* bad : {"AVX2", "sse", "avx2 ", "", "scalar2"}) {
    SimdMode untouched = SimdMode::kScalar;
    EXPECT_FALSE(reram::gemm::parse_simd_mode(bad, untouched))
        << "value '" << bad << "'";
    EXPECT_EQ(untouched, SimdMode::kScalar);
  }
}

TEST(Env, SimdModeFromEnvFollowsStrictContract) {
  using reram::gemm::SimdMode;
  {
    ScopedEnv env("ODIN_SIMD", nullptr);
    EXPECT_EQ(reram::gemm::simd_mode_from_env(),
              reram::gemm::default_simd_mode());
  }
  {
    ScopedEnv env("ODIN_SIMD", "scalar");
    EXPECT_EQ(reram::gemm::simd_mode_from_env(), SimdMode::kScalar);
  }
  {
    // Garbage warns and falls back to the default — never a third state.
    ScopedEnv env("ODIN_SIMD", "neon");
    EXPECT_EQ(reram::gemm::simd_mode_from_env(),
              reram::gemm::default_simd_mode());
  }
  {
    // An explicit avx2 request resolves to avx2 when available and
    // degrades to scalar (with a warning) when not — never fails.
    ScopedEnv env("ODIN_SIMD", "avx2");
    const SimdMode want = reram::gemm::avx2_available()
                              ? SimdMode::kAvx2
                              : SimdMode::kScalar;
    EXPECT_EQ(reram::gemm::simd_mode_from_env(), want);
  }
}

TEST(Env, BatchMaxDefaultsAndClamps) {
  core::BatchingConfig cfg;
  {
    ScopedEnv env("ODIN_BATCH_MAX", nullptr);
    EXPECT_EQ(cfg.resolved_max_batch(), 8);  // baked-in default
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "32");
    EXPECT_EQ(cfg.resolved_max_batch(), 32);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "64batch");  // garbage: warn + default
    EXPECT_EQ(cfg.resolved_max_batch(), 8);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "0");  // below the floor: default
    EXPECT_EQ(cfg.resolved_max_batch(), 8);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "99999");  // clamped to the ceiling
    EXPECT_EQ(cfg.resolved_max_batch(), 1024);
  }
  {
    // An explicit config cap wins over the environment entirely.
    ScopedEnv env("ODIN_BATCH_MAX", "32");
    cfg.max_batch = 4;
    EXPECT_EQ(cfg.resolved_max_batch(), 4);
    cfg.max_batch = 5000;
    EXPECT_EQ(cfg.resolved_max_batch(), 1024);
  }
}

TEST(Env, SpareRowsDefaultsAndClamps) {
  reram::WearLevelingParams params;
  {
    ScopedEnv env("ODIN_SPARE_ROWS", nullptr);
    EXPECT_EQ(params.resolved_spare_rows(), 16);  // baked-in default
  }
  {
    ScopedEnv env("ODIN_SPARE_ROWS", "32");
    EXPECT_EQ(params.resolved_spare_rows(), 32);
  }
  {
    ScopedEnv env("ODIN_SPARE_ROWS", "32rows");  // garbage: warn + default
    EXPECT_EQ(params.resolved_spare_rows(), 16);
  }
  {
    ScopedEnv env("ODIN_SPARE_ROWS", "0");  // below the floor: clamped
    EXPECT_EQ(params.resolved_spare_rows(), 1);
  }
  {
    ScopedEnv env("ODIN_SPARE_ROWS", "99999");  // clamped to the ceiling
    EXPECT_EQ(params.resolved_spare_rows(), 512);
  }
  {
    // An explicit config pool wins over the environment entirely.
    ScopedEnv env("ODIN_SPARE_ROWS", "32");
    params.spare_rows = 4;
    EXPECT_EQ(params.resolved_spare_rows(), 4);
    params.spare_rows = 5000;
    EXPECT_EQ(params.resolved_spare_rows(), 512);
  }
}

TEST(Env, OdinShardsDefaultsAndClamps) {
  core::FleetConfig cfg;
  {
    ScopedEnv env("ODIN_SHARDS", nullptr);
    EXPECT_EQ(cfg.resolved_shards(), 1);  // baked-in default: one shard
  }
  {
    ScopedEnv env("ODIN_SHARDS", "9");
    EXPECT_EQ(cfg.resolved_shards(), 9);
  }
  {
    ScopedEnv env("ODIN_SHARDS", "9shards");  // garbage: warn + default
    EXPECT_EQ(cfg.resolved_shards(), 1);
  }
  {
    ScopedEnv env("ODIN_SHARDS", "0");  // below the floor: default
    EXPECT_EQ(cfg.resolved_shards(), 1);
  }
  {
    ScopedEnv env("ODIN_SHARDS", "99");  // clamped to the PE count
    EXPECT_EQ(cfg.resolved_shards(), cfg.pim.pes);
  }
  {
    // An explicit config shard count wins over the environment entirely.
    ScopedEnv env("ODIN_SHARDS", "9");
    cfg.shards = 4;
    EXPECT_EQ(cfg.resolved_shards(), 4);
    cfg.shards = 5000;
    EXPECT_EQ(cfg.resolved_shards(), cfg.pim.pes);
  }
}

TEST(Env, ScenarioSeedDefaultsAndFloor) {
  core::ScenarioConfig cfg;
  {
    ScopedEnv env("ODIN_SCENARIO_SEED", nullptr);
    EXPECT_EQ(cfg.resolved_seed(), 1u);  // baked-in default seed
  }
  {
    ScopedEnv env("ODIN_SCENARIO_SEED", "1234");
    EXPECT_EQ(cfg.resolved_seed(), 1234u);
  }
  {
    ScopedEnv env("ODIN_SCENARIO_SEED", "12cows");  // garbage: warn+default
    EXPECT_EQ(cfg.resolved_seed(), 1u);
  }
  {
    ScopedEnv env("ODIN_SCENARIO_SEED", "0");  // below the floor: default
    EXPECT_EQ(cfg.resolved_seed(), 1u);
  }
  {
    ScopedEnv env("ODIN_SCENARIO_SEED", "-3");  // below the floor: default
    EXPECT_EQ(cfg.resolved_seed(), 1u);
  }
  {
    // An explicit config seed wins over the environment entirely.
    ScopedEnv env("ODIN_SCENARIO_SEED", "1234");
    cfg.seed = 7;
    EXPECT_EQ(cfg.resolved_seed(), 7u);
  }
}

TEST(Env, AutoscaleTriStateFollowsStrictContract) {
  core::AutoscaleConfig cfg;
  {
    ScopedEnv env("ODIN_AUTOSCALE", nullptr);
    EXPECT_TRUE(cfg.resolved_enabled());  // baked-in default: on
  }
  {
    ScopedEnv env("ODIN_AUTOSCALE", "off");
    EXPECT_FALSE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_AUTOSCALE", "0");
    EXPECT_FALSE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_AUTOSCALE", "on");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_AUTOSCALE", "1");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
  for (const char* bad : {"yes", "ON", "off ", "2", "true"}) {
    // Garbage warns and falls back to the default — never a third state.
    ScopedEnv env("ODIN_AUTOSCALE", bad);
    EXPECT_TRUE(cfg.resolved_enabled()) << "value '" << bad << "'";
  }
  {
    // An explicit config setting wins over the environment entirely.
    ScopedEnv env("ODIN_AUTOSCALE", "on");
    cfg.enabled = 0;
    EXPECT_FALSE(cfg.resolved_enabled());
    cfg.enabled = 1;
    ScopedEnv env2("ODIN_AUTOSCALE", "off");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
}

TEST(Env, OdinMeshesDefaultsAndClamps) {
  core::ClusterConfig cfg;
  {
    ScopedEnv env("ODIN_MESHES", nullptr);
    EXPECT_EQ(cfg.resolved_meshes(), 1);  // baked-in default: one mesh
  }
  {
    ScopedEnv env("ODIN_MESHES", "3");
    EXPECT_EQ(cfg.resolved_meshes(), 3);
  }
  {
    ScopedEnv env("ODIN_MESHES", "3meshes");  // garbage: warn + default
    EXPECT_EQ(cfg.resolved_meshes(), 1);
  }
  {
    ScopedEnv env("ODIN_MESHES", "0");  // below the floor: default
    EXPECT_EQ(cfg.resolved_meshes(), 1);
  }
  {
    ScopedEnv env("ODIN_MESHES", "99");  // clamped to the ceiling
    EXPECT_EQ(cfg.resolved_meshes(), 8);
  }
  {
    // An explicit config mesh count wins over the environment entirely.
    ScopedEnv env("ODIN_MESHES", "3");
    cfg.meshes = 2;
    EXPECT_EQ(cfg.resolved_meshes(), 2);
    cfg.meshes = 5000;
    EXPECT_EQ(cfg.resolved_meshes(), 8);
  }
}

TEST(Env, ReplicationEpochsDefaultsAndClamps) {
  core::ClusterConfig cfg;
  {
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", nullptr);
    EXPECT_EQ(cfg.resolved_replication_epochs(), 4);  // baked-in default
  }
  {
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", "8");
    EXPECT_EQ(cfg.resolved_replication_epochs(), 8);
  }
  {
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", "8ep");  // garbage: default
    EXPECT_EQ(cfg.resolved_replication_epochs(), 4);
  }
  {
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", "0");  // below floor: default
    EXPECT_EQ(cfg.resolved_replication_epochs(), 4);
  }
  {
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", "999");  // clamped to ceiling
    EXPECT_EQ(cfg.resolved_replication_epochs(), 64);
  }
  {
    // An explicit config cadence wins over the environment entirely.
    ScopedEnv env("ODIN_REPLICATION_EPOCHS", "8");
    cfg.replication_epochs = 2;
    EXPECT_EQ(cfg.resolved_replication_epochs(), 2);
    cfg.replication_epochs = 5000;
    EXPECT_EQ(cfg.resolved_replication_epochs(), 64);
  }
}

TEST(Env, FailoverTriStateFollowsStrictContract) {
  core::FailoverConfig cfg;
  {
    ScopedEnv env("ODIN_FAILOVER", nullptr);
    EXPECT_TRUE(cfg.resolved_enabled());  // baked-in default: on
  }
  {
    ScopedEnv env("ODIN_FAILOVER", "off");
    EXPECT_FALSE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_FAILOVER", "0");
    EXPECT_FALSE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_FAILOVER", "on");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
  {
    ScopedEnv env("ODIN_FAILOVER", "1");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
  for (const char* bad : {"yes", "ON", "off ", "2", "true"}) {
    // Garbage warns and falls back to the default — never a third state.
    ScopedEnv env("ODIN_FAILOVER", bad);
    EXPECT_TRUE(cfg.resolved_enabled()) << "value '" << bad << "'";
  }
  {
    // An explicit config setting wins over the environment entirely.
    ScopedEnv env("ODIN_FAILOVER", "on");
    cfg.enabled = 0;
    EXPECT_FALSE(cfg.resolved_enabled());
    cfg.enabled = 1;
    ScopedEnv env2("ODIN_FAILOVER", "off");
    EXPECT_TRUE(cfg.resolved_enabled());
  }
}

TEST(Env, WearBudgetDefaultsAndClamps) {
  reram::WearLevelingParams params;
  {
    ScopedEnv env("ODIN_WEAR_BUDGET", nullptr);
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 0.80);  // default 80%
  }
  {
    ScopedEnv env("ODIN_WEAR_BUDGET", "50");
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 0.50);
  }
  {
    ScopedEnv env("ODIN_WEAR_BUDGET", "50%");  // garbage: warn + default
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 0.80);
  }
  {
    ScopedEnv env("ODIN_WEAR_BUDGET", "0");  // below the floor: clamped
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 0.01);
  }
  {
    ScopedEnv env("ODIN_WEAR_BUDGET", "250");  // clamped to the ceiling
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 1.0);
  }
  {
    // An explicit config budget wins over the environment entirely.
    ScopedEnv env("ODIN_WEAR_BUDGET", "50");
    params.wear_budget_percent = 25;
    EXPECT_DOUBLE_EQ(params.resolved_wear_budget(), 0.25);
  }
}

}  // namespace
}  // namespace odin
