// Strict environment-variable parsing (common/env.hpp) and the knobs
// built on it: ODIN_SIMD kernel dispatch (reram/batch_gemm.hpp) and the
// ODIN_BATCH_MAX batch-formation cap (core/resilience.hpp). The contract
// (DESIGN.md §13/§14): a value must parse in full or it is ignored with a
// stderr warning and the default applies — a typo never silently changes
// behaviour.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "core/resilience.hpp"
#include "reram/batch_gemm.hpp"

namespace odin {
namespace {

/// Scoped setenv/unsetenv so a failing assertion can't leak state into
/// the next test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr)
      ::unsetenv(name);
    else
      ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

constexpr const char* kVar = "ODIN_TEST_ENV_VAR";

TEST(Env, LongParsesWholeValue) {
  long long v = -1;
  {
    ScopedEnv env(kVar, "42");
    EXPECT_TRUE(common::env_long(kVar, v));
    EXPECT_EQ(v, 42);
  }
  {
    ScopedEnv env(kVar, "-7");
    EXPECT_TRUE(common::env_long(kVar, v));
    EXPECT_EQ(v, -7);
  }
}

TEST(Env, LongRejectsGarbageAndPartialParses) {
  for (const char* bad : {"abc", "12abc", "1.5", "", " 3", "3 "}) {
    long long v = 99;
    ScopedEnv env(kVar, bad);
    EXPECT_FALSE(common::env_long(kVar, v)) << "value '" << bad << "'";
    EXPECT_EQ(v, 99) << "out must be untouched for '" << bad << "'";
  }
}

TEST(Env, LongUnsetReturnsFalse) {
  ScopedEnv env(kVar, nullptr);
  long long v = 5;
  EXPECT_FALSE(common::env_long(kVar, v));
  EXPECT_EQ(v, 5);
}

TEST(Env, StringReturnsNullWhenUnsetOrEmpty) {
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_EQ(common::env_string(kVar), nullptr);
  }
  {
    ScopedEnv env(kVar, "");
    EXPECT_EQ(common::env_string(kVar), nullptr);
  }
  {
    ScopedEnv env(kVar, "hello");
    ASSERT_NE(common::env_string(kVar), nullptr);
    EXPECT_STREQ(common::env_string(kVar), "hello");
  }
}

TEST(Env, ParseSimdModeIsStrict) {
  using reram::gemm::SimdMode;
  SimdMode mode = SimdMode::kAvx2;
  EXPECT_TRUE(reram::gemm::parse_simd_mode("scalar", mode));
  EXPECT_EQ(mode, SimdMode::kScalar);
  EXPECT_TRUE(reram::gemm::parse_simd_mode("avx2", mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);
  for (const char* bad : {"AVX2", "sse", "avx2 ", "", "scalar2"}) {
    SimdMode untouched = SimdMode::kScalar;
    EXPECT_FALSE(reram::gemm::parse_simd_mode(bad, untouched))
        << "value '" << bad << "'";
    EXPECT_EQ(untouched, SimdMode::kScalar);
  }
}

TEST(Env, SimdModeFromEnvFollowsStrictContract) {
  using reram::gemm::SimdMode;
  {
    ScopedEnv env("ODIN_SIMD", nullptr);
    EXPECT_EQ(reram::gemm::simd_mode_from_env(),
              reram::gemm::default_simd_mode());
  }
  {
    ScopedEnv env("ODIN_SIMD", "scalar");
    EXPECT_EQ(reram::gemm::simd_mode_from_env(), SimdMode::kScalar);
  }
  {
    // Garbage warns and falls back to the default — never a third state.
    ScopedEnv env("ODIN_SIMD", "neon");
    EXPECT_EQ(reram::gemm::simd_mode_from_env(),
              reram::gemm::default_simd_mode());
  }
  {
    // An explicit avx2 request resolves to avx2 when available and
    // degrades to scalar (with a warning) when not — never fails.
    ScopedEnv env("ODIN_SIMD", "avx2");
    const SimdMode want = reram::gemm::avx2_available()
                              ? SimdMode::kAvx2
                              : SimdMode::kScalar;
    EXPECT_EQ(reram::gemm::simd_mode_from_env(), want);
  }
}

TEST(Env, BatchMaxDefaultsAndClamps) {
  core::BatchingConfig cfg;
  {
    ScopedEnv env("ODIN_BATCH_MAX", nullptr);
    EXPECT_EQ(cfg.resolved_max_batch(), 8);  // baked-in default
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "32");
    EXPECT_EQ(cfg.resolved_max_batch(), 32);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "64batch");  // garbage: warn + default
    EXPECT_EQ(cfg.resolved_max_batch(), 8);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "0");  // below the floor: default
    EXPECT_EQ(cfg.resolved_max_batch(), 8);
  }
  {
    ScopedEnv env("ODIN_BATCH_MAX", "99999");  // clamped to the ceiling
    EXPECT_EQ(cfg.resolved_max_batch(), 1024);
  }
  {
    // An explicit config cap wins over the environment entirely.
    ScopedEnv env("ODIN_BATCH_MAX", "32");
    cfg.max_batch = 4;
    EXPECT_EQ(cfg.resolved_max_batch(), 4);
    cfg.max_batch = 5000;
    EXPECT_EQ(cfg.resolved_max_batch(), 1024);
  }
}

}  // namespace
}  // namespace odin
