// Pinned reference kernel: a line-for-line port of the original per-cell
// Crossbar MVM path (device physics evaluated per access, no precomputed
// planes), rebuilt on top of the public state accessors. The plane-based
// kernel in reram/crossbar.cpp must stay bitwise identical to this —
// tests/test_mvm_kernel.cpp enforces it and bench/micro_mvm.cpp times the
// two against each other.
//
// The reference evaluates noise-free: it matches a noisy crossbar exactly
// only when every stochastic magnitude is zero (read_sigma = 0 makes the
// per-read draw multiply by exactly 1.0), which is how the tests cover the
// fault-injected and per-cell-drift configurations deterministically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "reram/crossbar.hpp"
#include "reram/device.hpp"

namespace odin::testref {

inline double quantize_adc(double value, double full_scale, int adc_bits) {
  const double levels = static_cast<double>((1 << adc_bits) - 1);
  const double clamped = std::clamp(value, -full_scale, full_scale);
  const double code = std::round((clamped + full_scale) / (2 * full_scale) *
                                 levels);
  return code / levels * 2 * full_scale - full_scale;
}

inline double ideal_weight(const reram::Crossbar& x, int row, int col) {
  const std::size_t idx =
      static_cast<std::size_t>(row) * x.size() + col;
  const auto sign = x.signs();
  if (sign[idx] == 0) return 0.0;
  return sign[idx] *
         reram::conductance_to_weight(x.device(), x.conductances()[idx]);
}

inline double elapsed_since_program(const reram::Crossbar& x, double t_s) {
  return std::max(t_s - x.programmed_at_s(), x.device().t0_s);
}

inline double cell_drift_factor(const reram::Crossbar& x, std::size_t idx,
                                double elapsed_s) {
  const auto coeff = x.drift_coefficients();
  const double v =
      coeff.empty() ? x.device().drift_coefficient : coeff[idx];
  return std::pow(std::max(elapsed_s, x.device().t0_s) / x.device().t0_s,
                  -v);
}

inline double ir_factor(const reram::Crossbar& x, double t_s, int ou_rows,
                        int ou_cols) {
  const double elapsed = elapsed_since_program(x, t_s);
  return reram::effective_conductance(x.device(), elapsed, ou_rows,
                                      ou_cols) /
         reram::drift_conductance(x.device(), elapsed);
}

inline double ir_factor_at(const reram::Crossbar& x, double t_s,
                           int row_in_ou, int col_in_ou) {
  const double elapsed = elapsed_since_program(x, t_s);
  const double g_drift = reram::drift_conductance(x.device(), elapsed);
  const double series = x.device().r_wire_ohm *
                        static_cast<double>(row_in_ou + col_in_ou + 2);
  return (1.0 / (1.0 / g_drift + series)) / g_drift;
}

inline double effective_weight(const reram::Crossbar& x, int row, int col,
                               double t_s, int ou_rows, int ou_cols) {
  const std::size_t idx =
      static_cast<std::size_t>(row) * x.size() + col;
  const double elapsed = elapsed_since_program(x, t_s);
  const double ir = x.ir_model() == reram::IrModel::kSpatial
                        ? ir_factor_at(x, t_s, row % ou_rows, col % ou_cols)
                        : ir_factor(x, t_s, ou_rows, ou_cols);
  return ideal_weight(x, row, col) * cell_drift_factor(x, idx, elapsed) * ir;
}

/// The original per-cell OU kernel: conductance -> weight conversion, drift
/// and IR-drop evaluated per touched cell, zero-sign cells skipped.
inline std::vector<double> mvm_ou(const reram::Crossbar& x,
                                  std::span<const double> input, int row0,
                                  int ou_rows, int col0, int ou_cols,
                                  double t_s, int adc_bits) {
  const auto sign = x.signs();
  const auto g = x.conductances();
  const double elapsed = elapsed_since_program(x, t_s);
  const bool spatial = x.ir_model() == reram::IrModel::kSpatial;
  const double lumped_ir =
      spatial ? 1.0 : ir_factor(x, t_s, ou_rows, ou_cols);
  const bool uniform_drift = x.drift_coefficients().empty();
  const double nominal_drift =
      uniform_drift ? cell_drift_factor(x, 0, elapsed) : 1.0;
  std::vector<double> out(static_cast<std::size_t>(ou_cols), 0.0);
  for (int c = 0; c < ou_cols; ++c) {
    double acc = 0.0;
    for (int r = 0; r < ou_rows; ++r) {
      const std::size_t idx =
          static_cast<std::size_t>(row0 + r) * x.size() + (col0 + c);
      if (sign[idx] == 0) continue;
      double w = sign[idx] * reram::conductance_to_weight(x.device(), g[idx]);
      if (!uniform_drift) w *= cell_drift_factor(x, idx, elapsed);
      if (spatial) w *= ir_factor_at(x, t_s, r, c);
      acc += input[static_cast<std::size_t>(r)] * w;
    }
    acc *= lumped_ir * nominal_drift;
    out[static_cast<std::size_t>(c)] =
        quantize_adc(acc, static_cast<double>(ou_rows), adc_bits);
  }
  return out;
}

/// Full-array pass composed of reference OU kernels, r0-outer / c0-inner —
/// the original sequential tile order (per output column the partial sums
/// land in increasing-r0 order, same as any schedule of the new kernel).
inline std::vector<double> mvm(const reram::Crossbar& x,
                               std::span<const double> input, int ou_rows,
                               int ou_cols, double t_s, int adc_bits) {
  const int live_rows = x.programmed_rows();
  const int live_cols = x.programmed_cols();
  std::vector<double> out(static_cast<std::size_t>(live_cols), 0.0);
  for (int r0 = 0; r0 < live_rows; r0 += ou_rows) {
    const int rows = std::min(ou_rows, live_rows - r0);
    const std::span<const double> slice{input.data() + r0,
                                        static_cast<std::size_t>(rows)};
    for (int c0 = 0; c0 < live_cols; c0 += ou_cols) {
      const int cols = std::min(ou_cols, live_cols - c0);
      const auto part = mvm_ou(x, slice, r0, rows, c0, cols, t_s, adc_bits);
      for (int c = 0; c < cols; ++c)
        out[static_cast<std::size_t>(c0 + c)] +=
            part[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

/// Batched OU reference: N independent single-query reference calls packed
/// into one tight panel (query b's inputs at inputs[b*ou_rows], outputs at
/// out[b*ou_cols]) — the sequential semantics the batched kernel must match
/// bit for bit.
inline std::vector<double> mvm_ou_batch(const reram::Crossbar& x,
                                        std::span<const double> inputs,
                                        int batch, int row0, int ou_rows,
                                        int col0, int ou_cols, double t_s,
                                        int adc_bits) {
  std::vector<double> out(static_cast<std::size_t>(batch) * ou_cols, 0.0);
  for (int b = 0; b < batch; ++b) {
    const std::span<const double> in{
        inputs.data() + static_cast<std::size_t>(b) * ou_rows,
        static_cast<std::size_t>(ou_rows)};
    const auto one =
        mvm_ou(x, in, row0, ou_rows, col0, ou_cols, t_s, adc_bits);
    std::copy(one.begin(), one.end(),
              out.begin() + static_cast<std::size_t>(b) * ou_cols);
  }
  return out;
}

/// Batched full-array reference: N sequential single-query full passes,
/// inputs strided by `in_stride`, outputs packed tight per query.
inline std::vector<double> mvm_batch(const reram::Crossbar& x,
                                     std::span<const double> inputs,
                                     int batch, std::size_t in_stride,
                                     int ou_rows, int ou_cols, double t_s,
                                     int adc_bits) {
  const int live_cols = x.programmed_cols();
  const int live_rows = x.programmed_rows();
  std::vector<double> out(
      static_cast<std::size_t>(batch) * live_cols, 0.0);
  for (int b = 0; b < batch; ++b) {
    const std::span<const double> in{
        inputs.data() + static_cast<std::size_t>(b) * in_stride,
        static_cast<std::size_t>(live_rows)};
    const auto one = mvm(x, in, ou_rows, ou_cols, t_s, adc_bits);
    std::copy(one.begin(), one.end(),
              out.begin() + static_cast<std::size_t>(b) * live_cols);
  }
  return out;
}

/// Original ideal MVM: row-outer accumulation with zero-input rows skipped.
inline std::vector<double> ideal_mvm(const reram::Crossbar& x,
                                     std::span<const double> input) {
  const int live_rows = x.programmed_rows();
  const int live_cols = x.programmed_cols();
  std::vector<double> out(static_cast<std::size_t>(live_cols), 0.0);
  for (int r = 0; r < live_rows; ++r) {
    const double v = input[static_cast<std::size_t>(r)];
    if (v == 0.0) continue;
    for (int c = 0; c < live_cols; ++c)
      out[static_cast<std::size_t>(c)] += v * ideal_weight(x, r, c);
  }
  return out;
}

/// Original RMS error: per-cell ideal/effective weights in row-major order.
inline double weight_rms_error(const reram::Crossbar& x, double t_s,
                               int ou_rows, int ou_cols) {
  const int live_rows = x.programmed_rows();
  const int live_cols = x.programmed_cols();
  if (live_rows == 0 || live_cols == 0) return 0.0;
  double acc = 0.0;
  std::int64_t n = 0;
  for (int r = 0; r < live_rows; ++r) {
    for (int c = 0; c < live_cols; ++c) {
      const double d = ideal_weight(x, r, c) -
                       effective_weight(x, r, c, t_s, ou_rows, ou_cols);
      acc += d * d;
      ++n;
    }
  }
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace odin::testref
