// Tests for the stuck-at-fault injection and the spatial IR-drop model.
#include <gtest/gtest.h>

#include <cmath>

#include "reram/crossbar.hpp"

namespace odin::reram {
namespace {

std::vector<double> ones(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

TEST(StuckAtFaults, NoFaultsWithoutNoiseModel) {
  Crossbar xbar(16, DeviceParams{});
  xbar.program(ones(256), 16, 16, 0.0);
  EXPECT_EQ(xbar.faulty_cells(), 0);
}

TEST(StuckAtFaults, FaultRateMatchesParams) {
  NoiseParams np;
  np.stuck_on_rate = 0.05;
  np.stuck_off_rate = 0.05;
  Crossbar xbar(64, DeviceParams{}, NoiseModel(np, 7));
  xbar.program(ones(64 * 64), 64, 64, 0.0);
  // 10% of 4096 cells, with Monte-Carlo slack.
  EXPECT_NEAR(static_cast<double>(xbar.faulty_cells()), 409.6, 120.0);
}

TEST(StuckAtFaults, FaultsSurviveReprogramming) {
  NoiseParams np;
  np.stuck_off_rate = 0.2;
  Crossbar xbar(16, DeviceParams{}, NoiseModel(np, 3));
  xbar.program(ones(256), 16, 16, 0.0);
  const auto faults_before = xbar.faulty_cells();
  ASSERT_GT(faults_before, 0);
  xbar.program(ones(256), 16, 16, 100.0);
  EXPECT_EQ(xbar.faulty_cells(), faults_before);
}

TEST(StuckAtFaults, StuckOffCellsReadAsZero) {
  NoiseParams np;
  np.stuck_off_rate = 1.0;  // every cell broken
  np.program_sigma = 0.0;
  np.read_sigma = 0.0;
  Crossbar xbar(8, DeviceParams{}, NoiseModel(np, 5));
  xbar.program(ones(64), 8, 8, 0.0);
  EXPECT_EQ(xbar.programmed_cells(), 0);
  const auto out = xbar.mvm_ou(ones(8), 0, 8, 0, 8, 1.0, 12);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-2);
}

TEST(StuckAtFaults, StuckOnCellsConductRegardlessOfTarget) {
  NoiseParams np;
  np.stuck_on_rate = 1.0;
  np.program_sigma = 0.0;
  np.read_sigma = 0.0;
  Crossbar xbar(8, DeviceParams{}, NoiseModel(np, 5));
  // Target all-zero weights; the stuck-on cells conduct at G_ON anyway.
  xbar.program(std::vector<double>(64, 0.0), 8, 8, 0.0);
  EXPECT_EQ(xbar.programmed_cells(), 64);
  const auto out = xbar.mvm_ou(ones(8), 0, 8, 0, 8, 1.0, 12);
  for (double v : out) EXPECT_GT(v, 5.0);  // ~8 x 1 x 0.995 per column
}

TEST(StuckAtFaults, ModerateFaultsPerturbMvm) {
  NoiseParams clean_np;  // no faults
  NoiseParams faulty_np;
  faulty_np.stuck_off_rate = 0.05;
  faulty_np.program_sigma = 0.0;
  faulty_np.read_sigma = 0.0;
  clean_np.program_sigma = 0.0;
  clean_np.read_sigma = 0.0;
  Crossbar clean(32, DeviceParams{}, NoiseModel(clean_np, 9));
  Crossbar faulty(32, DeviceParams{}, NoiseModel(faulty_np, 9));
  common::Rng rng(11);
  std::vector<double> w(1024);
  for (double& v : w) v = rng.uniform(-1.0, 1.0);
  clean.program(w, 32, 32, 0.0);
  faulty.program(w, 32, 32, 0.0);
  const auto a = clean.mvm_ou(ones(32), 0, 32, 0, 32, 1.0, 12);
  const auto b = faulty.mvm_ou(ones(32), 0, 32, 0, 32, 1.0, 12);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(SpatialIr, FarCornerDegradesMoreThanNearCorner) {
  Crossbar xbar(64, DeviceParams{}, std::nullopt, IrModel::kSpatial);
  xbar.program(ones(64 * 64), 64, 64, 0.0);
  const double near = xbar.effective_weight(0, 0, 1.0, 64, 64);
  const double far = xbar.effective_weight(63, 63, 1.0, 64, 64);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.9);  // still a small effect at these parameters
}

TEST(SpatialIr, LumpedModelIsTheWorstCaseEnvelope) {
  // Eq. 4's lumped factor uses R + C segments — the far corner's path —
  // so every cell in the spatial model does at least as well.
  Crossbar spatial(32, DeviceParams{}, std::nullopt, IrModel::kSpatial);
  Crossbar lumped(32, DeviceParams{}, std::nullopt, IrModel::kLumped);
  spatial.program(ones(1024), 32, 32, 0.0);
  lumped.program(ones(1024), 32, 32, 0.0);
  for (int r = 0; r < 32; r += 7) {
    for (int c = 0; c < 32; c += 7) {
      EXPECT_GE(spatial.effective_weight(r, c, 1.0, 32, 32),
                lumped.effective_weight(r, c, 1.0, 32, 32) - 1e-12)
          << r << "," << c;
    }
  }
}

TEST(SpatialIr, MvmErrorLowerThanLumpedOnAverage) {
  Crossbar spatial(32, DeviceParams{}, std::nullopt, IrModel::kSpatial);
  Crossbar lumped(32, DeviceParams{}, std::nullopt, IrModel::kLumped);
  common::Rng rng(13);
  std::vector<double> w(1024);
  for (double& v : w) v = rng.uniform(0.0, 1.0);
  spatial.program(w, 32, 32, 0.0);
  lumped.program(w, 32, 32, 0.0);
  const auto ideal = spatial.ideal_mvm(ones(32));
  const auto s = spatial.mvm(ones(32), 32, 32, 1.0, 12);
  const auto l = lumped.mvm(ones(32), 32, 32, 1.0, 12);
  double se = 0.0, le = 0.0;
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    se += std::abs(s[i] - ideal[i]);
    le += std::abs(l[i] - ideal[i]);
  }
  EXPECT_LT(se, le);
}

}  // namespace
}  // namespace odin::reram
