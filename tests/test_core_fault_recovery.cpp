// Tests for the fault-recovery layer of OdinController: the reprogram
// livelock cap, bounded write-verify retries with latency backoff, the
// guardrailed eta-relaxation, and the serving-level fault counters.
#include <gtest/gtest.h>

#include <cmath>

#include "core/odin.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  OdinController controller(OdinConfig cfg = {},
                            reram::FaultInjector* faults = nullptr) {
    return OdinController(model, nonideal, cost,
                          policy::OuPolicy(ou::OuLevelGrid(128)), cfg,
                          faults);
  }
};

/// Endurance so poor one campaign sticks ~13% of cells — far over any
/// recoverable budget (F(1) = 1 - exp(-(1/3)^1.8)).
reram::FaultScheduleParams brutal_wear() {
  reram::FaultScheduleParams p;
  p.endurance.characteristic_cycles = 3.0;
  p.endurance.shape = 1.8;
  return p;
}

/// No wear at all: isolates the write-verify convergence path.
reram::FaultScheduleParams no_wear() {
  reram::FaultScheduleParams p;
  p.endurance.characteristic_cycles = 1e12;
  return p;
}

TEST(FaultRecovery, LivelockCappedAtOneReprogramThenDegraded) {
  Fixture fx;
  reram::FaultInjector faults(brutal_wear(), 17);
  auto ctl = fx.controller({}, &faults);
  EXPECT_FALSE(ctl.run_inference(1.0).degraded);  // healthy early

  // Drift forces a reprogram; the campaign wears ~13% of cells stuck, so
  // the post-program read-verify shows eta unreachable — exactly one
  // attempt, then degraded mode.
  const RunResult run = ctl.run_inference(1e8);
  EXPECT_TRUE(run.reprogrammed);
  EXPECT_TRUE(run.degraded);
  EXPECT_GT(run.fault_fraction, 0.05);
  EXPECT_EQ(ctl.reprogram_count(), 1);

  // The rest of the horizon completes without another reprogram (the old
  // behaviour reprogrammed on every remaining run).
  for (double t : {2e8, 5e8, 1e9, 5e9}) {
    const RunResult later = ctl.run_inference(t);
    EXPECT_FALSE(later.reprogrammed) << "t=" << t;
    EXPECT_TRUE(later.degraded);
    EXPECT_EQ(later.decisions.size(), fx.model.layer_count());
    EXPECT_GT(later.inference.energy_j, 0.0);
  }
  EXPECT_EQ(ctl.reprogram_count(), 1);
  EXPECT_GT(ctl.degraded_run_count(), 0);
}

TEST(FaultRecovery, UnrecoverableDeviceIsNeverReprogrammed) {
  Fixture fx;
  reram::FaultInjector faults(brutal_wear(), 17);
  faults.program_campaign();  // inherited device, already ~13% stuck
  auto ctl = fx.controller({}, &faults);
  // The floor alone exceeds eta at a fresh drift clock: reprogramming
  // cannot help, so not even one attempt is made.
  const RunResult run = ctl.run_inference(1.0);
  EXPECT_FALSE(run.reprogrammed);
  EXPECT_TRUE(run.degraded);
  EXPECT_EQ(ctl.reprogram_count(), 0);
  ctl.run_inference(1e8);
  EXPECT_EQ(ctl.reprogram_count(), 0);
}

TEST(FaultRecovery, RetryExhaustionAccountsBackoffLatency) {
  Fixture fx;
  reram::FaultScheduleParams p = no_wear();
  p.write_fail_rate = 1.0;  // no campaign ever converges
  reram::FaultInjector faults(p, 5);
  auto ctl = fx.controller({}, &faults);

  const RunResult run = ctl.run_inference(1e8);  // drift-forced reprogram
  EXPECT_TRUE(run.reprogrammed);
  EXPECT_TRUE(run.write_verify_failed);
  EXPECT_TRUE(run.degraded);
  // Default policy: 3 attempts -> 2 retries, latency x2 then x4.
  EXPECT_EQ(run.program_retries, 2);
  EXPECT_EQ(ctl.retry_count(), 2);
  EXPECT_EQ(faults.campaigns(), 3);
  const common::EnergyLatency base = ctl.full_reprogram_cost();
  EXPECT_NEAR(run.reprogram.energy_j, 3.0 * base.energy_j,
              1e-9 * base.energy_j);
  EXPECT_NEAR(run.reprogram.latency_s, 7.0 * base.latency_s,
              1e-9 * base.latency_s);
  // Logical reprogram events count once, not per attempt.
  EXPECT_EQ(ctl.reprogram_count(), 1);
  EXPECT_DOUBLE_EQ(run.elapsed_s, fx.nonideal.device().t0_s);
}

TEST(FaultRecovery, RelaxationRestoresFeasibilityUnderLooseGuardrail) {
  Fixture fx;
  OdinConfig cfg;
  cfg.fault.accuracy_floor = 0.0;  // guardrail never binds
  cfg.fault.eta_relax_max = 8.0;
  reram::FaultInjector faults(brutal_wear(), 17);
  faults.program_campaign();  // inherited ~13% floor
  auto ctl = fx.controller(cfg, &faults);
  const RunResult run = ctl.run_inference(1.0);
  EXPECT_TRUE(run.degraded);
  EXPECT_FALSE(run.accuracy_floor_hit);
  EXPECT_GT(run.eta_scale, 1.0);
  EXPECT_LE(run.eta_scale, cfg.fault.eta_relax_max);
  EXPECT_EQ(run.decisions.size(), fx.model.layer_count());
}

TEST(FaultRecovery, DefaultGuardrailCapsRelaxationAndFlagsIt) {
  Fixture fx;
  reram::FaultInjector faults(brutal_wear(), 17);
  faults.program_campaign();  // 13% floor >> what accuracy_floor=0.75 admits
  auto ctl = fx.controller({}, &faults);
  const RunResult run = ctl.run_inference(1.0);
  EXPECT_TRUE(run.degraded);
  EXPECT_TRUE(run.accuracy_floor_hit);
  // Relaxation ratcheted up to the guardrail cap but no further: the cap
  // admits excess 0.02 * (1 - 0.75/0.92) / 0.6 over eta_total.
  EXPECT_LT(run.eta_scale, 1.2);
  // The run still completes on the fallback configuration.
  EXPECT_EQ(run.decisions.size(), fx.model.layer_count());
  EXPECT_GT(run.inference.energy_j, 0.0);
  EXPECT_LT(run.estimated_accuracy, 0.75);  // surrogate reflects the damage
}

TEST(FaultRecovery, NoInjectorKeepsSeedBehaviour) {
  Fixture fx;
  auto ctl = fx.controller();
  const RunResult run = ctl.run_inference(1e8);
  EXPECT_TRUE(run.reprogrammed);
  EXPECT_FALSE(run.degraded);
  EXPECT_FALSE(run.write_verify_failed);
  EXPECT_EQ(run.program_retries, 0);
  EXPECT_DOUBLE_EQ(run.fault_fraction, 0.0);
  EXPECT_DOUBLE_EQ(run.eta_scale, 1.0);
  // Feasible at the fresh clock: the surrogate reports ideal accuracy.
  EXPECT_DOUBLE_EQ(run.estimated_accuracy, 0.92);
  EXPECT_FALSE(ctl.degraded());
}

TEST(FaultRecovery, BaselineThrashesWhereOdinDegrades) {
  Fixture fx;
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 120};
  // Endurance poor enough that the baseline's own reprogramming pushes the
  // fault floor over eta mid-horizon.
  reram::FaultScheduleParams p;
  p.endurance.characteristic_cycles = 8.0;
  p.endurance.shape = 1.8;

  reram::FaultInjector base_faults(p, 23);
  HomogeneousRunner runner(fx.model, fx.nonideal, fx.cost,
                           ou::OuConfig{.rows = 16, .cols = 16}, true,
                           &base_faults);
  reram::FaultInjector odin_faults(p, 23);
  auto ctl = fx.controller({}, &odin_faults);
  for (double t : run_schedule(horizon)) {
    runner.run_inference(t);
    ctl.run_inference(t);
  }
  // The baseline reprograms into its own fault floor — every campaign makes
  // the next one more certain; Odin stops after at most one wasted attempt.
  EXPECT_GT(runner.reprogram_count(), 20);
  EXPECT_LE(ctl.reprogram_count(), 2);
  EXPECT_TRUE(ctl.degraded());
  EXPECT_GT(base_faults.fault_fraction(), odin_faults.fault_fraction());
}

TEST(FaultRecovery, ServingSurfacesRetryAndDegradedCounters) {
  ou::MappedModel a = testing::tiny_mapped();
  ou::MappedModel b = testing::tiny_mapped(128, 0x51ee7);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  ServingConfig cfg;
  cfg.horizon = {.t_start_s = 1.0, .t_end_s = 1e6, .runs = 48};
  cfg.segments = 4;

  // The first tenant-switch campaign already ruins the shared device, so
  // every controller starts degraded and every run counts as such.
  reram::FaultInjector faults(brutal_wear(), 31);
  const ServingResult result =
      serve_with_odin({&a, &b}, nonideal, cost,
                      policy::OuPolicy(ou::OuLevelGrid(128)), cfg, &faults);
  EXPECT_EQ(result.total_degraded_runs(), result.total_runs());
  EXPECT_EQ(result.total_retries(), 0);  // degraded controllers never retry
  EXPECT_EQ(faults.campaigns(), result.switches);
  for (const TenantStats& t : result.tenants)
    EXPECT_EQ(t.reprograms, 0);

  // The homogeneous path accepts the same injector (sequential walk).
  reram::FaultInjector hfaults(brutal_wear(), 31);
  const ServingResult hom = serve_with_homogeneous(
      {&a, &b}, nonideal, cost, ou::OuConfig{.rows = 8, .cols = 4}, cfg,
      &hfaults);
  EXPECT_EQ(hom.total_degraded_runs(), 0);  // baselines never degrade
  EXPECT_GT(hfaults.campaigns(), hom.switches);  // they thrash instead
}

}  // namespace
}  // namespace odin::core
