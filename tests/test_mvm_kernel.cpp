// Golden bitwise-equivalence tests for the plane-based MVM kernel
// (DESIGN.md §11): the restructured hot path must reproduce the original
// per-cell kernel (tests/reference_kernel.hpp) bit for bit across OU
// shapes, IR models, heterogeneous drift and fault-injected arrays — plus
// the cache-invalidation, counter-based-noise and zero-allocation
// guarantees the restructuring introduced.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/hardware_inference.hpp"
#include "nn/train.hpp"
#include "reference_kernel.hpp"
#include "reram/batch_gemm.hpp"
#include "reram/crossbar.hpp"

// --- Allocation counter -----------------------------------------------------
// Counts every global operator new so steady-state paths can assert they
// allocate nothing. Only the count is instrumented; allocation itself is
// forwarded to malloc/free.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC's -Wmismatched-new-delete sees through the forwarding operator new
// above once it inlines into a test body and flags the matching free() as
// a malloc/new mismatch — a false positive for a counting replacement pair.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace odin::reram {
namespace {

constexpr int kSize = 128;
constexpr int kLiveRows = 112;  // partial tiles on both axes
constexpr int kLiveCols = 96;
constexpr int kAdcBits = 6;

struct OuShape {
  int rows;
  int cols;
};
constexpr OuShape kShapes[] = {{4, 4}, {8, 4}, {16, 16}, {64, 64}};

std::vector<double> random_block(std::uint64_t seed, int rows, int cols) {
  common::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(rows) * cols);
  for (double& v : w)
    v = rng.bernoulli(0.4) ? rng.uniform(-1.0, 1.0) : 0.0;
  return w;
}

std::vector<double> random_input(std::uint64_t seed, int n) {
  common::Rng rng(seed);
  std::vector<double> in(static_cast<std::size_t>(n));
  for (double& v : in) v = rng.uniform();
  return in;
}

Crossbar make_crossbar(IrModel ir, std::optional<NoiseModel> noise,
                       double program_t = 0.0) {
  Crossbar x(kSize, DeviceParams{}, std::move(noise), ir);
  x.program(random_block(9, kLiveRows, kLiveCols), kLiveRows, kLiveCols,
            program_t);
  return x;
}

/// Exact bit-pattern comparison — stricter than EXPECT_EQ on doubles
/// (which would let +0.0 == -0.0 slide).
void expect_bitwise(std::span<const double> got,
                    std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " diverges at column " << i << ": " << got[i] << " vs "
        << want[i];
}

/// Compare the crossbar's mvm / mvm_ou / ideal_mvm / weight_rms_error
/// against the reference kernel at `t_s`.
void expect_matches_reference(Crossbar& x, double t_s) {
  const auto in = random_input(11, kSize);
  for (const OuShape& ou : kShapes) {
    SCOPED_TRACE(::testing::Message() << "OU " << ou.rows << "x" << ou.cols
                                      << " t=" << t_s);
    const auto got = x.mvm(in, ou.rows, ou.cols, t_s, kAdcBits);
    const auto want = testref::mvm(x, in, ou.rows, ou.cols, t_s, kAdcBits);
    expect_bitwise(got, want, "mvm");
  }
  // One OU window away from the origin (row0/col0 offsets exercised).
  const auto slice = random_input(13, 16);
  const auto got_ou = x.mvm_ou(slice, 32, 16, 48, 16, t_s, kAdcBits);
  const auto want_ou = testref::mvm_ou(x, slice, 32, 16, 48, 16, t_s,
                                       kAdcBits);
  expect_bitwise(got_ou, want_ou, "mvm_ou");
  const auto got_ideal = x.ideal_mvm(in);
  const auto want_ideal = testref::ideal_mvm(x, in);
  expect_bitwise(got_ideal, want_ideal, "ideal_mvm");
  for (const OuShape& ou : kShapes) {
    const double got_rms = x.weight_rms_error(t_s, ou.rows, ou.cols);
    const double want_rms = testref::weight_rms_error(x, t_s, ou.rows,
                                                      ou.cols);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got_rms),
              std::bit_cast<std::uint64_t>(want_rms))
        << "weight_rms_error OU " << ou.rows << "x" << ou.cols;
  }
}

TEST(MvmKernel, NoiselessMatchesReferenceLumped) {
  Crossbar x = make_crossbar(IrModel::kLumped, std::nullopt);
  expect_matches_reference(x, 1.0);
  expect_matches_reference(x, 3.5e5);
}

TEST(MvmKernel, NoiselessMatchesReferenceSpatial) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  expect_matches_reference(x, 1.0);
  expect_matches_reference(x, 3.5e5);
}

// Heterogeneous drift: each cell got its own sampled drift exponent at
// program time. All stochastic *read* magnitudes are zero, so the noisy
// walk computes exactly the values the reference derives from the stored
// state (a read draw multiplies by exactly 1.0).
NoiseParams drift_only_noise() {
  NoiseParams p;
  p.program_sigma = 0.02;  // perturbs stored conductance — fine, the
                           // reference reads the stored value back
  p.read_sigma = 0.0;
  p.drift_coeff_sigma = 0.10;
  return p;
}

TEST(MvmKernel, PerCellDriftMatchesReference) {
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(drift_only_noise(), 21));
    ASSERT_FALSE(x.drift_coefficients().empty());
    expect_matches_reference(x, 1.0);
    expect_matches_reference(x, 3.5e5);
  }
}

TEST(MvmKernel, FaultInjectedMatchesReference) {
  NoiseParams p = drift_only_noise();
  p.stuck_on_rate = 0.02;
  p.stuck_off_rate = 0.03;
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(p, 33));
    ASSERT_GT(x.faulty_cells(), 0);
    expect_matches_reference(x, 3.5e5);
  }
}

TEST(MvmKernel, EffectiveWeightMatchesReference) {
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(drift_only_noise(), 21));
    for (int r : {0, 7, 63, kLiveRows - 1}) {
      for (int c : {0, 5, 50, kLiveCols - 1}) {
        const double got = x.effective_weight(r, c, 2.0e4, 16, 16);
        const double want = testref::effective_weight(x, r, c, 2.0e4, 16, 16);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(want))
            << "cell (" << r << ", " << c << ")";
      }
    }
  }
}

// --- Cache invalidation -----------------------------------------------------

TEST(MvmKernel, PlaneCacheTracksTimestampChanges) {
  Crossbar x = make_crossbar(IrModel::kSpatial,
                             NoiseModel(drift_only_noise(), 21));
  const auto in = random_input(11, kSize);
  const auto at_t1 = x.mvm(in, 16, 16, 1.0, kAdcBits);
  expect_bitwise(at_t1, testref::mvm(x, in, 16, 16, 1.0, kAdcBits),
                 "t1 first visit");
  const auto at_t2 = x.mvm(in, 16, 16, 2.0e6, kAdcBits);
  expect_bitwise(at_t2, testref::mvm(x, in, 16, 16, 2.0e6, kAdcBits),
                 "t2 after t1");
  // Drift must actually have moved the output, otherwise the test is
  // vacuous.
  bool moved = false;
  for (std::size_t i = 0; i < at_t1.size(); ++i)
    if (at_t1[i] != at_t2[i]) moved = true;
  EXPECT_TRUE(moved);
  // Round-trip back to t1: the rebuilt cache reproduces the first visit
  // exactly.
  const auto at_t1_again = x.mvm(in, 16, 16, 1.0, kAdcBits);
  expect_bitwise(at_t1_again, at_t1, "t1 revisited");
}

TEST(MvmKernel, ReprogramInvalidatesPlanes) {
  Crossbar x = make_crossbar(IrModel::kLumped, std::nullopt);
  const auto in = random_input(11, kSize);
  const auto before = x.mvm(in, 16, 16, 5.0e5, kAdcBits);
  // New weights at a later absolute time: both the weight plane and the
  // elapsed-keyed caches must refresh.
  x.program(random_block(77, kLiveRows, kLiveCols), kLiveRows, kLiveCols,
            1.0e5);
  const auto after = x.mvm(in, 16, 16, 5.0e5, kAdcBits);
  expect_bitwise(after, testref::mvm(x, in, 16, 16, 5.0e5, kAdcBits),
                 "post-reprogram");
  bool moved = false;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) moved = true;
  EXPECT_TRUE(moved);
}

// --- Wear-leveling transparency ---------------------------------------------

// The acceptance pin for wear leveling (DESIGN.md §15): the logical→physical
// row map is tracking-only, so a heavily remapped/rotated crossbar must
// produce MVM outputs bitwise identical to an unworn, unleveled crossbar
// holding the same weights — across campaigns that rotate the map and force
// spare-row retirements.
TEST(MvmKernel, WearLevelingIsBitwiseTransparent) {
  WearLevelingParams leveling;
  leveling.enabled = true;
  leveling.rotate = true;
  leveling.spare_rows = 8;
  leveling.row_cycle_budget = 2.0;  // force retirements within a few campaigns
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    SCOPED_TRACE(ir == IrModel::kLumped ? "lumped" : "spatial");
    Crossbar leveled(kSize, DeviceParams{}, std::nullopt, ir);
    leveled.enable_wear_leveling(leveling);
    Crossbar plain(kSize, DeviceParams{}, std::nullopt, ir);
    for (int campaign = 0; campaign < 6; ++campaign) {
      const auto w = random_block(40 + static_cast<std::uint64_t>(campaign),
                                  kLiveRows, kLiveCols);
      const double t = 1.0 + 1e4 * campaign;
      leveled.program(w, kLiveRows, kLiveCols, t);
      plain.program(w, kLiveRows, kLiveCols, t);
      const auto in = random_input(11, kSize);
      for (const OuShape& ou : kShapes) {
        const auto got = leveled.mvm(in, ou.rows, ou.cols, t + 50.0,
                                     kAdcBits);
        const auto want = plain.mvm(in, ou.rows, ou.cols, t + 50.0,
                                    kAdcBits);
        expect_bitwise(got, want, "leveled vs plain mvm");
      }
      expect_matches_reference(leveled, t + 50.0);
    }
    // The pin is only meaningful if leveling actually moved the map: the
    // tight cycle budget must have consumed spares and the rotation must
    // have displaced writes off the identity mapping.
    EXPECT_GT(leveled.rows_remapped(), 0);
    EXPECT_LT(leveled.spares_remaining(), leveling.spare_rows);
    EXPECT_GT(leveled.writes_leveled(), 0);
    EXPECT_EQ(plain.rows_remapped(), 0);
  }
}

// --- Counter-based read-noise stream ----------------------------------------

NoiseParams read_noise_only() {
  NoiseParams p;
  p.program_sigma = 0.0;
  p.read_sigma = 0.05;  // large enough to survive ADC quantization
  p.drift_coeff_sigma = 0.0;
  return p;
}

TEST(MvmKernel, DefaultStreamIsSequential) {
  Crossbar x(kSize, DeviceParams{}, NoiseModel(read_noise_only(), 5));
  EXPECT_EQ(x.read_noise_stream(), Crossbar::ReadNoiseStream::kSequential);
}

TEST(MvmKernel, CounterStreamIsScheduleIndependent) {
  const auto in = random_input(11, kSize);
  auto run = [&](int threads) {
    common::ThreadPool::instance().set_threads(threads);
    Crossbar x = make_crossbar(IrModel::kSpatial,
                               NoiseModel(read_noise_only(), 5));
    x.set_read_noise_stream(Crossbar::ReadNoiseStream::kCounterBased);
    // Two epochs: outputs must be reproducible per epoch regardless of
    // schedule, and distinct across epochs (fresh draws).
    auto first = x.mvm(in, 16, 16, 1.0, 12);
    auto second = x.mvm(in, 16, 16, 1.0, 12);
    return std::pair(first, second);
  };
  const int hw = common::ThreadPool::instance().threads();
  const auto parallel = run(4);
  const auto sequential = run(1);
  common::ThreadPool::instance().set_threads(hw);
  expect_bitwise(parallel.first, sequential.first, "epoch 0");
  expect_bitwise(parallel.second, sequential.second, "epoch 1");
  bool epoch_moves = false;
  for (std::size_t i = 0; i < parallel.first.size(); ++i)
    if (parallel.first[i] != parallel.second[i]) epoch_moves = true;
  EXPECT_TRUE(epoch_moves) << "successive epochs reuse identical draws";
}

TEST(MvmKernel, CounterDrawsArePureFunctionsOfTheStream) {
  NoiseModel noise(read_noise_only(), 5);
  const double g = 200e-6;
  EXPECT_EQ(noise.read_at(g, 42), noise.read_at(g, 42));
  EXPECT_NE(noise.read_at(g, 42), noise.read_at(g, 43));
}

// --- Batched kernel ----------------------------------------------------------
// The batched entries must be bitwise identical to N sequential single-query
// calls (DESIGN.md §14) across OU shapes, batch sizes (including non-multiples
// of the 4-query SIMD lane width), panel strides, both IR models and both the
// GEMM fast path (noiseless) and the per-query noisy fallback.

/// Batch sizes straddling the 4-wide SIMD register block (tails of 1-3).
constexpr int kBatchSizes[] = {1, 2, 4, 5, 8, 11};

void expect_batched_matches_reference(Crossbar& x, double t_s) {
  constexpr std::size_t kStride = kSize;  // panel row wider than live rows
  for (const OuShape& ou : kShapes) {
    for (int batch : kBatchSizes) {
      SCOPED_TRACE(::testing::Message()
                   << "OU " << ou.rows << "x" << ou.cols << " batch "
                   << batch << " t=" << t_s);
      const auto panel =
          random_input(17 + static_cast<std::uint64_t>(batch),
                       batch * static_cast<int>(kStride));
      std::vector<double> got(static_cast<std::size_t>(batch) * kLiveCols);
      x.mvm(panel, batch, kStride, ou.rows, ou.cols, t_s, kAdcBits, got,
            kLiveCols);
      const auto want = testref::mvm_batch(x, panel, batch, kStride,
                                           ou.rows, ou.cols, t_s, kAdcBits);
      expect_bitwise(got, want, "batched mvm");
    }
  }
  // One OU window away from the origin, tight input packing.
  for (int batch : kBatchSizes) {
    SCOPED_TRACE(::testing::Message() << "mvm_ou batch " << batch);
    const auto inputs =
        random_input(19 + static_cast<std::uint64_t>(batch), batch * 16);
    std::vector<double> got(static_cast<std::size_t>(batch) * 16);
    x.mvm_ou(inputs, batch, 32, 16, 48, 16, t_s, kAdcBits, got);
    const auto want = testref::mvm_ou_batch(x, inputs, batch, 32, 16, 48,
                                            16, t_s, kAdcBits);
    expect_bitwise(got, want, "batched mvm_ou");
  }
}

TEST(MvmKernel, BatchedMatchesSequentialLumped) {
  Crossbar x = make_crossbar(IrModel::kLumped, std::nullopt);
  expect_batched_matches_reference(x, 1.0);
  expect_batched_matches_reference(x, 3.5e5);
}

TEST(MvmKernel, BatchedMatchesSequentialSpatial) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  expect_batched_matches_reference(x, 1.0);
  expect_batched_matches_reference(x, 3.5e5);
}

TEST(MvmKernel, BatchedPerCellDriftMatchesSequential) {
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(drift_only_noise(), 21));
    ASSERT_FALSE(x.drift_coefficients().empty());
    expect_batched_matches_reference(x, 3.5e5);
  }
}

TEST(MvmKernel, BatchedFaultInjectedMatchesSequential) {
  NoiseParams p = drift_only_noise();
  p.stuck_on_rate = 0.02;
  p.stuck_off_rate = 0.03;
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(p, 33));
    ASSERT_GT(x.faulty_cells(), 0);
    expect_batched_matches_reference(x, 3.5e5);
  }
}

// With live read noise the reference kernel no longer applies, so the pin
// is directly against N sequential single-query calls on an identically
// constructed crossbar (same seed -> same draw/epoch sequence).
TEST(MvmKernel, BatchedNoisyStreamMatchesSequential) {
  for (auto stream : {Crossbar::ReadNoiseStream::kSequential,
                      Crossbar::ReadNoiseStream::kCounterBased}) {
    SCOPED_TRACE(static_cast<int>(stream));
    Crossbar batched = make_crossbar(IrModel::kSpatial,
                                     NoiseModel(read_noise_only(), 5));
    Crossbar seq = make_crossbar(IrModel::kSpatial,
                                 NoiseModel(read_noise_only(), 5));
    batched.set_read_noise_stream(stream);
    seq.set_read_noise_stream(stream);
    constexpr int kBatch = 5;
    const auto panel = random_input(23, kBatch * kSize);
    std::vector<double> got(static_cast<std::size_t>(kBatch) * kLiveCols);
    batched.mvm(panel, kBatch, kSize, 16, 16, 1.0, 12, got, kLiveCols);
    std::vector<double> want(got.size());
    for (int b = 0; b < kBatch; ++b)
      seq.mvm(std::span<const double>(panel).subspan(
                  static_cast<std::size_t>(b) * kSize, kLiveRows),
              16, 16, 1.0, 12,
              std::span<double>(want).subspan(
                  static_cast<std::size_t>(b) * kLiveCols, kLiveCols));
    expect_bitwise(got, want, "noisy batched mvm");
  }
}

// The explicit-SIMD path vectorizes across queries with per-lane operation
// order identical to the scalar kernel, so the two must agree bit for bit.
TEST(MvmKernel, SimdModesAgreeBitwise) {
  if (!gemm::avx2_available())
    GTEST_SKIP() << "AVX2 unavailable in this build/CPU";
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  constexpr int kBatch = 7;  // two full 4-query lanes worth minus a tail
  const auto panel = random_input(29, kBatch * kSize);
  std::vector<double> scalar_out(static_cast<std::size_t>(kBatch) *
                                 kLiveCols);
  std::vector<double> avx2_out(scalar_out.size());
  gemm::set_simd_mode(gemm::SimdMode::kScalar);
  x.mvm(panel, kBatch, kSize, 16, 16, 2.0, kAdcBits, scalar_out, kLiveCols);
  gemm::set_simd_mode(gemm::SimdMode::kAvx2);
  x.mvm(panel, kBatch, kSize, 16, 16, 2.0, kAdcBits, avx2_out, kLiveCols);
  gemm::set_simd_mode(gemm::default_simd_mode());
  expect_bitwise(avx2_out, scalar_out, "scalar vs avx2");
}

// --- Zero allocation in steady state ----------------------------------------

TEST(MvmKernel, SpanMvmDoesNotAllocateInSteadyState) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  const auto in = random_input(11, kSize);
  std::vector<double> out(static_cast<std::size_t>(kLiveCols));
  x.mvm(in, 16, 16, 2.0, kAdcBits, out);  // warm caches (and the pool)
  const std::uint64_t before = g_allocations.load();
  for (int rep = 0; rep < 8; ++rep) x.mvm(in, 16, 16, 2.0, kAdcBits, out);
  x.mvm_ou(std::span<const double>(in).subspan(0, 16), 0, 16, 0, 16, 2.0,
           kAdcBits, out);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "span mvm/mvm_ou allocated on a warm cache";
}

TEST(MvmKernel, BatchedMvmDoesNotAllocateInSteadyState) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  constexpr int kBatch = 8;
  const auto panel = random_input(31, kBatch * kSize);
  std::vector<double> out(static_cast<std::size_t>(kBatch) * kLiveCols);
  std::vector<double> ou_out(static_cast<std::size_t>(kBatch) * 16);
  // Warm the planes, the pool and the batch scratch at the target size.
  x.mvm(panel, kBatch, kSize, 16, 16, 2.0, kAdcBits, out, kLiveCols);
  x.mvm_ou(std::span<const double>(panel).subspan(0, kBatch * 16), kBatch,
           32, 16, 48, 16, 2.0, kAdcBits, ou_out);
  const std::uint64_t before = g_allocations.load();
  for (int rep = 0; rep < 8; ++rep) {
    x.mvm(panel, kBatch, kSize, 16, 16, 2.0, kAdcBits, out, kLiveCols);
    x.mvm_ou(std::span<const double>(panel).subspan(0, kBatch * 16), kBatch,
             32, 16, 48, 16, 2.0, kAdcBits, ou_out);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "batched mvm/mvm_ou allocated on a warm cache";
}

}  // namespace
}  // namespace odin::reram

namespace odin::core {
namespace {

TEST(MvmKernel, ForwardPassDoesNotAllocateInSteadyState) {
  nn::MultiHeadMlp model(
      nn::MlpConfig{.inputs = 48, .hidden = {32}, .heads = {10}}, 5);
  HardwareMlpRunner hw(model, reram::DeviceParams{}, 64);
  std::vector<double> input(48);
  common::Rng rng(3);
  for (double& v : input) v = rng.uniform();
  (void)hw.predict(input, {16, 16}, 1.0);  // warm scratch + planes
  const std::uint64_t before = g_allocations.load();
  int votes = 0;
  for (int rep = 0; rep < 8; ++rep) votes += hw.predict(input, {16, 16}, 1.0);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "predict allocated in steady state (votes " << votes << ")";
}

// --- Batched forward path ----------------------------------------------------

HardwareMlpRunner make_runner() {
  nn::MultiHeadMlp model(
      nn::MlpConfig{.inputs = 48, .hidden = {32}, .heads = {10}}, 5);
  return HardwareMlpRunner(model, reram::DeviceParams{}, 64);
}

std::vector<double> random_panel(std::uint64_t seed, std::size_t n) {
  std::vector<double> panel(n);
  common::Rng rng(seed);
  for (double& v : panel) v = rng.uniform(-1.0, 1.0);
  return panel;
}

TEST(MvmKernel, BatchedForwardMatchesSingleQuery) {
  HardwareMlpRunner hw = make_runner();
  constexpr int kBatch = 5;  // exercises the 4-query SIMD tail
  constexpr std::size_t kStride = 48;
  const auto panel = random_panel(7, kBatch * kStride);
  std::vector<double> batched(static_cast<std::size_t>(kBatch) * 10);
  hw.logits(panel, kBatch, kStride, {16, 16}, 1.0, batched);
  std::vector<int> preds(kBatch);
  hw.predict(panel, kBatch, kStride, {16, 16}, 1.0, preds);
  for (int b = 0; b < kBatch; ++b) {
    const std::span<const double> one_in =
        std::span<const double>(panel).subspan(
            static_cast<std::size_t>(b) * kStride, kStride);
    const auto one = hw.logits(one_in, {16, 16}, 1.0);
    ASSERT_EQ(one.size(), 10u);
    for (std::size_t k = 0; k < one.size(); ++k)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    batched[static_cast<std::size_t>(b) * 10 + k]),
                std::bit_cast<std::uint64_t>(one[k]))
          << "query " << b << " logit " << k;
    EXPECT_EQ(preds[b], hw.predict(one_in, {16, 16}, 1.0)) << "query " << b;
  }
}

TEST(MvmKernel, BatchedAccuracyMatchesSingleQuery) {
  HardwareMlpRunner hw = make_runner();
  nn::Dataset data;
  data.inputs = nn::Matrix(23, 48);  // odd count: final partial batch
  data.labels.assign(1, std::vector<int>(23));
  common::Rng rng(17);
  for (std::size_t i = 0; i < 23; ++i) {
    for (std::size_t f = 0; f < 48; ++f)
      data.inputs(i, f) = rng.uniform(-1.0, 1.0);
    data.labels[0][i] = static_cast<int>(i % 10);
  }
  const double single = hw.accuracy(data, {16, 16}, 1.0);
  for (int batch : {1, 4, 8}) {
    EXPECT_EQ(hw.accuracy(data, {16, 16}, 1.0, batch), single)
        << "batch " << batch;
  }
}

TEST(MvmKernel, BatchedForwardDoesNotAllocateInSteadyState) {
  HardwareMlpRunner hw = make_runner();
  constexpr int kBatch = 6;
  constexpr std::size_t kStride = 48;
  const auto panel = random_panel(11, kBatch * kStride);
  std::vector<double> out(static_cast<std::size_t>(kBatch) * 10);
  std::vector<int> preds(kBatch);
  // Warm scratch + planes at the target batch size.
  hw.logits(panel, kBatch, kStride, {16, 16}, 1.0, out);
  hw.predict(panel, kBatch, kStride, {16, 16}, 1.0, preds);
  const std::uint64_t before = g_allocations.load();
  for (int rep = 0; rep < 8; ++rep) {
    hw.logits(panel, kBatch, kStride, {16, 16}, 1.0, out);
    hw.predict(panel, kBatch, kStride, {16, 16}, 1.0, preds);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "batched logits/predict allocated in steady state";
}

}  // namespace
}  // namespace odin::core
