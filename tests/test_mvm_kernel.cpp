// Golden bitwise-equivalence tests for the plane-based MVM kernel
// (DESIGN.md §11): the restructured hot path must reproduce the original
// per-cell kernel (tests/reference_kernel.hpp) bit for bit across OU
// shapes, IR models, heterogeneous drift and fault-injected arrays — plus
// the cache-invalidation, counter-based-noise and zero-allocation
// guarantees the restructuring introduced.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/hardware_inference.hpp"
#include "reference_kernel.hpp"
#include "reram/crossbar.hpp"

// --- Allocation counter -----------------------------------------------------
// Counts every global operator new so steady-state paths can assert they
// allocate nothing. Only the count is instrumented; allocation itself is
// forwarded to malloc/free.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace odin::reram {
namespace {

constexpr int kSize = 128;
constexpr int kLiveRows = 112;  // partial tiles on both axes
constexpr int kLiveCols = 96;
constexpr int kAdcBits = 6;

struct OuShape {
  int rows;
  int cols;
};
constexpr OuShape kShapes[] = {{4, 4}, {8, 4}, {16, 16}, {64, 64}};

std::vector<double> random_block(std::uint64_t seed, int rows, int cols) {
  common::Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(rows) * cols);
  for (double& v : w)
    v = rng.bernoulli(0.4) ? rng.uniform(-1.0, 1.0) : 0.0;
  return w;
}

std::vector<double> random_input(std::uint64_t seed, int n) {
  common::Rng rng(seed);
  std::vector<double> in(static_cast<std::size_t>(n));
  for (double& v : in) v = rng.uniform();
  return in;
}

Crossbar make_crossbar(IrModel ir, std::optional<NoiseModel> noise,
                       double program_t = 0.0) {
  Crossbar x(kSize, DeviceParams{}, std::move(noise), ir);
  x.program(random_block(9, kLiveRows, kLiveCols), kLiveRows, kLiveCols,
            program_t);
  return x;
}

/// Exact bit-pattern comparison — stricter than EXPECT_EQ on doubles
/// (which would let +0.0 == -0.0 slide).
void expect_bitwise(std::span<const double> got,
                    std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " diverges at column " << i << ": " << got[i] << " vs "
        << want[i];
}

/// Compare the crossbar's mvm / mvm_ou / ideal_mvm / weight_rms_error
/// against the reference kernel at `t_s`.
void expect_matches_reference(Crossbar& x, double t_s) {
  const auto in = random_input(11, kSize);
  for (const OuShape& ou : kShapes) {
    SCOPED_TRACE(::testing::Message() << "OU " << ou.rows << "x" << ou.cols
                                      << " t=" << t_s);
    const auto got = x.mvm(in, ou.rows, ou.cols, t_s, kAdcBits);
    const auto want = testref::mvm(x, in, ou.rows, ou.cols, t_s, kAdcBits);
    expect_bitwise(got, want, "mvm");
  }
  // One OU window away from the origin (row0/col0 offsets exercised).
  const auto slice = random_input(13, 16);
  const auto got_ou = x.mvm_ou(slice, 32, 16, 48, 16, t_s, kAdcBits);
  const auto want_ou = testref::mvm_ou(x, slice, 32, 16, 48, 16, t_s,
                                       kAdcBits);
  expect_bitwise(got_ou, want_ou, "mvm_ou");
  const auto got_ideal = x.ideal_mvm(in);
  const auto want_ideal = testref::ideal_mvm(x, in);
  expect_bitwise(got_ideal, want_ideal, "ideal_mvm");
  for (const OuShape& ou : kShapes) {
    const double got_rms = x.weight_rms_error(t_s, ou.rows, ou.cols);
    const double want_rms = testref::weight_rms_error(x, t_s, ou.rows,
                                                      ou.cols);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got_rms),
              std::bit_cast<std::uint64_t>(want_rms))
        << "weight_rms_error OU " << ou.rows << "x" << ou.cols;
  }
}

TEST(MvmKernel, NoiselessMatchesReferenceLumped) {
  Crossbar x = make_crossbar(IrModel::kLumped, std::nullopt);
  expect_matches_reference(x, 1.0);
  expect_matches_reference(x, 3.5e5);
}

TEST(MvmKernel, NoiselessMatchesReferenceSpatial) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  expect_matches_reference(x, 1.0);
  expect_matches_reference(x, 3.5e5);
}

// Heterogeneous drift: each cell got its own sampled drift exponent at
// program time. All stochastic *read* magnitudes are zero, so the noisy
// walk computes exactly the values the reference derives from the stored
// state (a read draw multiplies by exactly 1.0).
NoiseParams drift_only_noise() {
  NoiseParams p;
  p.program_sigma = 0.02;  // perturbs stored conductance — fine, the
                           // reference reads the stored value back
  p.read_sigma = 0.0;
  p.drift_coeff_sigma = 0.10;
  return p;
}

TEST(MvmKernel, PerCellDriftMatchesReference) {
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(drift_only_noise(), 21));
    ASSERT_FALSE(x.drift_coefficients().empty());
    expect_matches_reference(x, 1.0);
    expect_matches_reference(x, 3.5e5);
  }
}

TEST(MvmKernel, FaultInjectedMatchesReference) {
  NoiseParams p = drift_only_noise();
  p.stuck_on_rate = 0.02;
  p.stuck_off_rate = 0.03;
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(p, 33));
    ASSERT_GT(x.faulty_cells(), 0);
    expect_matches_reference(x, 3.5e5);
  }
}

TEST(MvmKernel, EffectiveWeightMatchesReference) {
  for (IrModel ir : {IrModel::kLumped, IrModel::kSpatial}) {
    Crossbar x = make_crossbar(ir, NoiseModel(drift_only_noise(), 21));
    for (int r : {0, 7, 63, kLiveRows - 1}) {
      for (int c : {0, 5, 50, kLiveCols - 1}) {
        const double got = x.effective_weight(r, c, 2.0e4, 16, 16);
        const double want = testref::effective_weight(x, r, c, 2.0e4, 16, 16);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(want))
            << "cell (" << r << ", " << c << ")";
      }
    }
  }
}

// --- Cache invalidation -----------------------------------------------------

TEST(MvmKernel, PlaneCacheTracksTimestampChanges) {
  Crossbar x = make_crossbar(IrModel::kSpatial,
                             NoiseModel(drift_only_noise(), 21));
  const auto in = random_input(11, kSize);
  const auto at_t1 = x.mvm(in, 16, 16, 1.0, kAdcBits);
  expect_bitwise(at_t1, testref::mvm(x, in, 16, 16, 1.0, kAdcBits),
                 "t1 first visit");
  const auto at_t2 = x.mvm(in, 16, 16, 2.0e6, kAdcBits);
  expect_bitwise(at_t2, testref::mvm(x, in, 16, 16, 2.0e6, kAdcBits),
                 "t2 after t1");
  // Drift must actually have moved the output, otherwise the test is
  // vacuous.
  bool moved = false;
  for (std::size_t i = 0; i < at_t1.size(); ++i)
    if (at_t1[i] != at_t2[i]) moved = true;
  EXPECT_TRUE(moved);
  // Round-trip back to t1: the rebuilt cache reproduces the first visit
  // exactly.
  const auto at_t1_again = x.mvm(in, 16, 16, 1.0, kAdcBits);
  expect_bitwise(at_t1_again, at_t1, "t1 revisited");
}

TEST(MvmKernel, ReprogramInvalidatesPlanes) {
  Crossbar x = make_crossbar(IrModel::kLumped, std::nullopt);
  const auto in = random_input(11, kSize);
  const auto before = x.mvm(in, 16, 16, 5.0e5, kAdcBits);
  // New weights at a later absolute time: both the weight plane and the
  // elapsed-keyed caches must refresh.
  x.program(random_block(77, kLiveRows, kLiveCols), kLiveRows, kLiveCols,
            1.0e5);
  const auto after = x.mvm(in, 16, 16, 5.0e5, kAdcBits);
  expect_bitwise(after, testref::mvm(x, in, 16, 16, 5.0e5, kAdcBits),
                 "post-reprogram");
  bool moved = false;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) moved = true;
  EXPECT_TRUE(moved);
}

// --- Counter-based read-noise stream ----------------------------------------

NoiseParams read_noise_only() {
  NoiseParams p;
  p.program_sigma = 0.0;
  p.read_sigma = 0.05;  // large enough to survive ADC quantization
  p.drift_coeff_sigma = 0.0;
  return p;
}

TEST(MvmKernel, DefaultStreamIsSequential) {
  Crossbar x(kSize, DeviceParams{}, NoiseModel(read_noise_only(), 5));
  EXPECT_EQ(x.read_noise_stream(), Crossbar::ReadNoiseStream::kSequential);
}

TEST(MvmKernel, CounterStreamIsScheduleIndependent) {
  const auto in = random_input(11, kSize);
  auto run = [&](int threads) {
    common::ThreadPool::instance().set_threads(threads);
    Crossbar x = make_crossbar(IrModel::kSpatial,
                               NoiseModel(read_noise_only(), 5));
    x.set_read_noise_stream(Crossbar::ReadNoiseStream::kCounterBased);
    // Two epochs: outputs must be reproducible per epoch regardless of
    // schedule, and distinct across epochs (fresh draws).
    auto first = x.mvm(in, 16, 16, 1.0, 12);
    auto second = x.mvm(in, 16, 16, 1.0, 12);
    return std::pair(first, second);
  };
  const int hw = common::ThreadPool::instance().threads();
  const auto parallel = run(4);
  const auto sequential = run(1);
  common::ThreadPool::instance().set_threads(hw);
  expect_bitwise(parallel.first, sequential.first, "epoch 0");
  expect_bitwise(parallel.second, sequential.second, "epoch 1");
  bool epoch_moves = false;
  for (std::size_t i = 0; i < parallel.first.size(); ++i)
    if (parallel.first[i] != parallel.second[i]) epoch_moves = true;
  EXPECT_TRUE(epoch_moves) << "successive epochs reuse identical draws";
}

TEST(MvmKernel, CounterDrawsArePureFunctionsOfTheStream) {
  NoiseModel noise(read_noise_only(), 5);
  const double g = 200e-6;
  EXPECT_EQ(noise.read_at(g, 42), noise.read_at(g, 42));
  EXPECT_NE(noise.read_at(g, 42), noise.read_at(g, 43));
}

// --- Zero allocation in steady state ----------------------------------------

TEST(MvmKernel, SpanMvmDoesNotAllocateInSteadyState) {
  Crossbar x = make_crossbar(IrModel::kSpatial, std::nullopt);
  const auto in = random_input(11, kSize);
  std::vector<double> out(static_cast<std::size_t>(kLiveCols));
  x.mvm(in, 16, 16, 2.0, kAdcBits, out);  // warm caches (and the pool)
  const std::uint64_t before = g_allocations.load();
  for (int rep = 0; rep < 8; ++rep) x.mvm(in, 16, 16, 2.0, kAdcBits, out);
  x.mvm_ou(std::span<const double>(in).subspan(0, 16), 0, 16, 0, 16, 2.0,
           kAdcBits, out);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "span mvm/mvm_ou allocated on a warm cache";
}

}  // namespace
}  // namespace odin::reram

namespace odin::core {
namespace {

TEST(MvmKernel, ForwardPassDoesNotAllocateInSteadyState) {
  nn::MultiHeadMlp model(
      nn::MlpConfig{.inputs = 48, .hidden = {32}, .heads = {10}}, 5);
  HardwareMlpRunner hw(model, reram::DeviceParams{}, 64);
  std::vector<double> input(48);
  common::Rng rng(3);
  for (double& v : input) v = rng.uniform();
  (void)hw.predict(input, {16, 16}, 1.0);  // warm scratch + planes
  const std::uint64_t before = g_allocations.load();
  int votes = 0;
  for (int rep = 0; rep < 8; ++rep) votes += hw.predict(input, {16, 16}, 1.0);
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "predict allocated in steady state (votes " << votes << ")";
}

}  // namespace
}  // namespace odin::core
