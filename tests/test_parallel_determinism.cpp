// Determinism contract of the parallel execution layer: every parallelized
// tier (tile MVM/programming, OU search, experiment sweeps, offline dataset
// generation) must produce results bitwise identical to ODIN_THREADS=1.
// Every comparison below is exact (EXPECT_EQ on doubles), not tolerance-
// based — that is the whole point.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/parallel.hpp"
#include "core/baselines.hpp"
#include "core/hardware_inference.hpp"
#include "core/serving.hpp"
#include "data/synthetic.hpp"
#include "policy/offline.hpp"
#include "reram/fault_injection.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

void expect_same(const common::EnergyLatency& a,
                 const common::EnergyLatency& b) {
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.latency_s, b.latency_s);
}

AggregateResult run_odin(int threads) {
  common::ThreadPool::instance().set_threads(threads);
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  OdinController ctl(model, nonideal, cost,
                     policy::OuPolicy(ou::OuLevelGrid(128)));
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e7, .runs = 40};
  return simulate_odin(ctl, horizon);
}

TEST(ParallelDeterminism, OdinExperimentBitwiseIdentical) {
  const AggregateResult seq = run_odin(1);
  const AggregateResult par = run_odin(8);
  expect_same(seq.inference, par.inference);
  expect_same(seq.reprogram, par.reprogram);
  EXPECT_EQ(seq.total_edp(), par.total_edp());
  EXPECT_EQ(seq.mismatches, par.mismatches);
  EXPECT_EQ(seq.reprograms, par.reprograms);
  EXPECT_EQ(seq.policy_updates, par.policy_updates);
  EXPECT_EQ(seq.searches_skipped, par.searches_skipped);
}

std::vector<AggregateResult> run_sweep(int threads) {
  common::ThreadPool::instance().set_threads(threads);
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  const auto baselines = paper_baseline_configs();
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e7, .runs = 60};
  return simulate_homogeneous_sweep(model, nonideal, cost, baselines,
                                    horizon);
}

TEST(ParallelDeterminism, HomogeneousSweepBitwiseIdentical) {
  const auto seq = run_sweep(1);
  const auto par = run_sweep(8);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].label, par[i].label);
    expect_same(seq[i].inference, par[i].inference);
    expect_same(seq[i].reprogram, par[i].reprogram);
    EXPECT_EQ(seq[i].reprograms, par[i].reprograms);
  }
}

ServingResult run_serving(int threads, bool odin) {
  common::ThreadPool::instance().set_threads(threads);
  ou::MappedModel a = testing::tiny_mapped();
  ou::MappedModel b = testing::tiny_mapped(128, 0x51ee7);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  ServingConfig cfg;
  cfg.horizon = {.t_start_s = 1.0, .t_end_s = 1e6, .runs = 48};
  cfg.segments = 4;
  if (odin)
    return serve_with_odin({&a, &b}, nonideal, cost,
                           policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  return serve_with_homogeneous({&a, &b}, nonideal, cost,
                                ou::OuConfig{.rows = 8, .cols = 4}, cfg);
}

void expect_same_serving(const ServingResult& seq, const ServingResult& par) {
  expect_same(seq.programming, par.programming);
  expect_same(seq.total(), par.total());
  EXPECT_EQ(seq.switches, par.switches);
  EXPECT_EQ(seq.total_runs(), par.total_runs());
  EXPECT_EQ(seq.total_mismatches(), par.total_mismatches());
  ASSERT_EQ(seq.tenants.size(), par.tenants.size());
  for (std::size_t i = 0; i < seq.tenants.size(); ++i) {
    expect_same(seq.tenants[i].inference, par.tenants[i].inference);
    expect_same(seq.tenants[i].reprogram, par.tenants[i].reprogram);
    EXPECT_EQ(seq.tenants[i].runs, par.tenants[i].runs);
    EXPECT_EQ(seq.tenants[i].reprograms, par.tenants[i].reprograms);
  }
}

TEST(ParallelDeterminism, HomogeneousServingBitwiseIdentical) {
  expect_same_serving(run_serving(1, false), run_serving(8, false));
}

TEST(ParallelDeterminism, OdinServingBitwiseIdentical) {
  expect_same_serving(run_serving(1, true), run_serving(8, true));
}

ServingResult run_faulty_serving(int threads, bool odin) {
  common::ThreadPool::instance().set_threads(threads);
  ou::MappedModel a = testing::tiny_mapped();
  ou::MappedModel b = testing::tiny_mapped(128, 0x51ee7);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  ServingConfig cfg;
  cfg.horizon = {.t_start_s = 1.0, .t_end_s = 1e8, .runs = 48};
  cfg.segments = 4;
  // A schedule that exercises every fault path: wear over the serving
  // lifetime, peripheral failures, flaky writes, and one drift burst.
  reram::FaultScheduleParams p;
  p.endurance.characteristic_cycles = 12.0;
  p.endurance.shape = 1.8;
  p.wordline_fail_rate = 1e-3;
  p.bitline_fail_rate = 1e-3;
  p.write_fail_rate = 0.4;
  p.bursts = {{.start_s = 1e5, .duration_s = 1e6, .multiplier = 5.0}};
  reram::FaultInjector faults(p, 0xfade);
  if (odin)
    return serve_with_odin({&a, &b}, nonideal, cost,
                           policy::OuPolicy(ou::OuLevelGrid(128)), cfg,
                           &faults);
  return serve_with_homogeneous({&a, &b}, nonideal, cost,
                                ou::OuConfig{.rows = 8, .cols = 4}, cfg,
                                &faults);
}

void expect_same_fault_counters(const ServingResult& seq,
                                const ServingResult& par) {
  expect_same_serving(seq, par);
  EXPECT_EQ(seq.total_retries(), par.total_retries());
  EXPECT_EQ(seq.total_degraded_runs(), par.total_degraded_runs());
  for (std::size_t i = 0; i < seq.tenants.size(); ++i) {
    EXPECT_EQ(seq.tenants[i].retries, par.tenants[i].retries);
    EXPECT_EQ(seq.tenants[i].degraded_runs, par.tenants[i].degraded_runs);
  }
}

TEST(ParallelDeterminism, FaultyOdinServingBitwiseIdentical) {
  // The injector draws on the controller thread only; candidate evaluation
  // stays pure, so the fault path keeps the bitwise contract.
  expect_same_fault_counters(run_faulty_serving(1, true),
                             run_faulty_serving(8, true));
}

TEST(ParallelDeterminism, FaultyHomogeneousServingBitwiseIdentical) {
  expect_same_fault_counters(run_faulty_serving(1, false),
                             run_faulty_serving(8, false));
}

std::vector<double> run_hardware(int threads) {
  common::ThreadPool::instance().set_threads(threads);
  data::SyntheticDataset dataset(
      data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 99);
  nn::MultiHeadMlp model(
      nn::MlpConfig{.inputs = dataset.feature_count(4), .hidden = {40},
                    .heads = {10}},
      7);
  // crossbar_size 32 < fan-in, so every layer spans a multi-cell grid and
  // the per-crossbar program/MVM fan-out is actually exercised; noise on so
  // the per-crossbar RNG stream assignment is covered too.
  HardwareMlpRunner runner(model, reram::DeviceParams{}, 32,
                           /*noise_seed=*/42);
  nn::Dataset sample = dataset.as_feature_dataset(2, 4);
  const ou::OuConfig ou{.rows = 8, .cols = 8};
  std::vector<double> out = runner.logits(sample.inputs.row(0), ou, 1e5);
  runner.program(2e5);  // reprogram fans out again, fresh drift clock
  const auto late = runner.logits(sample.inputs.row(1), ou, 3e5);
  out.insert(out.end(), late.begin(), late.end());
  return out;
}

TEST(ParallelDeterminism, HardwareNoisyLogitsBitwiseIdentical) {
  const auto seq = run_hardware(1);
  const auto par = run_hardware(8);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], par[i]) << "logit " << i;
}

nn::Dataset run_offline(int threads) {
  common::ThreadPool::instance().set_threads(threads);
  ou::MappedModel a = testing::tiny_mapped();
  ou::MappedModel b = testing::tiny_mapped(128, 0x7777);
  const ou::MappedModel* known[] = {&a, &b};
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  policy::OfflineTrainConfig cfg;
  cfg.time_samples = 3;
  cfg.t_end_s = 1e6;
  cfg.max_examples = 100;
  return policy::build_offline_dataset(known, nonideal, cost,
                                       ou::OuLevelGrid(128), cfg);
}

TEST(ParallelDeterminism, OfflineDatasetBitwiseIdentical) {
  const nn::Dataset seq = run_offline(1);
  const nn::Dataset par = run_offline(8);
  ASSERT_EQ(seq.inputs.rows(), par.inputs.rows());
  ASSERT_EQ(seq.inputs.cols(), par.inputs.cols());
  for (std::size_t r = 0; r < seq.inputs.rows(); ++r) {
    const auto sr = seq.inputs.row(r);
    const auto pr = par.inputs.row(r);
    for (std::size_t c = 0; c < seq.inputs.cols(); ++c)
      ASSERT_EQ(sr[c], pr[c]) << "example " << r << " feature " << c;
  }
  EXPECT_EQ(seq.labels, par.labels);
}

}  // namespace
}  // namespace odin::core
