// Wear-leveling lifecycle tests (DESIGN.md §15): row rotation and spare-row
// remapping on the behavioural Crossbar, the analytic FaultInjector's
// leveled campaign walk (spare pool absorption, proactive crossbar
// retirement, deterministic fast-forward replay), the WearMap codec, and
// the serving-level retirement/migration campaign — the graceful-
// degradation ladder rotate → remap → retire → migrate end to end.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/binary_io.hpp"
#include "core/serving.hpp"
#include "reram/crossbar.hpp"
#include "reram/endurance.hpp"
#include "reram/fault_injection.hpp"
#include "reram/wear_leveling.hpp"
#include "test_helpers.hpp"

namespace odin::reram {
namespace {

std::vector<double> block(int rows, int cols, double v = 0.5) {
  return std::vector<double>(static_cast<std::size_t>(rows) * cols, v);
}

WearLevelingParams tight_leveling() {
  WearLevelingParams p;
  p.enabled = true;
  p.rotate = true;
  p.spare_rows = 4;
  p.row_cycle_budget = 2.0;  // retire any row after two campaigns
  return p;
}

TEST(WearLeveling, RotationSpreadsWritesAcrossPhysicalRows) {
  constexpr int kSize = 16;
  constexpr int kRows = 12;
  WearLevelingParams p;
  p.enabled = true;
  p.rotate = true;
  p.spare_rows = 4;
  p.row_cycle_budget = 1e9;  // no retirement: isolate rotation
  Crossbar x(kSize, DeviceParams{});
  x.enable_wear_leveling(p);
  const int campaigns = kSize;  // one full rotation of the 16-row array
  for (int k = 0; k < campaigns; ++k)
    x.program(block(kRows, kRows), kRows, kRows, 1.0 + k);

  const WearMap map = x.wear_map();
  ASSERT_EQ(map.rows, kSize);
  // Every campaign charged exactly kRows physical rows.
  const std::int64_t total = std::accumulate(map.row_writes.begin(),
                                             map.row_writes.end(),
                                             std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(campaigns) * kRows);
  // Rotation advanced once per campaign after the first (identity) map...
  EXPECT_EQ(map.rotation, campaigns - 1);
  // ...so no physical row absorbed the whole write stream: an unleveled
  // array would have kRows rows at `campaigns` writes each.
  for (std::int64_t w : map.row_writes) EXPECT_LT(w, campaigns);
  // A full rotation also touched the rows above the logical block.
  EXPECT_GT(map.row_writes[static_cast<std::size_t>(kSize - 1)], 0);
  EXPECT_GT(x.writes_leveled(), 0);
  EXPECT_EQ(x.rows_remapped(), 0);
  EXPECT_EQ(x.spares_remaining(), p.spare_rows);
}

TEST(WearLeveling, WornRowsRetireOntoSparePoolUntilExhausted) {
  constexpr int kSize = 16;
  constexpr int kRows = 8;
  Crossbar x(kSize, DeviceParams{});
  x.enable_wear_leveling(tight_leveling());
  for (int k = 0; k < 20; ++k)
    x.program(block(kRows, kRows), kRows, kRows, 1.0 + k);
  // The 2-cycle budget retires rows as fast as the pool allows; the pool
  // is finite, so it pins at empty rather than going negative.
  EXPECT_EQ(x.rows_remapped(), 4);
  EXPECT_EQ(x.spares_remaining(), 0);
  const WearMap map = x.wear_map();
  int retired = 0;
  for (std::uint8_t r : map.retired) retired += r != 0 ? 1 : 0;
  EXPECT_EQ(retired, 4);
  // The logical block still maps onto live physical rows only.
  for (std::int32_t phys : map.remap)
    EXPECT_EQ(map.retired[static_cast<std::size_t>(phys)], 0);
}

TEST(WearLeveling, WearMapCodecRoundTripsExactly) {
  constexpr int kSize = 16;
  Crossbar x(kSize, DeviceParams{});
  x.enable_wear_leveling(tight_leveling());
  for (int k = 0; k < 9; ++k) x.program(block(8, 8), 8, 8, 1.0 + k);
  const WearMap map = x.wear_map();
  ASSERT_GT(map.rows, 0);

  common::ByteWriter out;
  encode_wear_map(map, out);
  common::ByteReader in(out.bytes());
  const auto decoded = decode_wear_map(in);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rows, map.rows);
  EXPECT_EQ(decoded->spare_rows, map.spare_rows);
  EXPECT_EQ(decoded->rotation, map.rotation);
  EXPECT_EQ(decoded->row_writes, map.row_writes);
  EXPECT_EQ(decoded->retired, map.retired);
  EXPECT_EQ(decoded->remap, map.remap);
  EXPECT_EQ(decoded->rows_remapped, map.rows_remapped);
  EXPECT_EQ(decoded->writes_leveled, map.writes_leveled);

  // Truncated input fails soft, never half-decodes.
  for (std::size_t cut : {std::size_t{0}, out.bytes().size() / 2,
                          out.bytes().size() - 1}) {
    common::ByteReader torn(std::string_view(out.bytes()).substr(0, cut));
    EXPECT_FALSE(decode_wear_map(torn).has_value()) << "cut=" << cut;
  }
}

TEST(WearLeveling, RestoreWearMapValidatesGeometry) {
  Crossbar a(16, DeviceParams{});
  a.enable_wear_leveling(tight_leveling());
  for (int k = 0; k < 5; ++k) a.program(block(8, 8), 8, 8, 1.0 + k);
  const WearMap map = a.wear_map();

  // Same geometry: the restored crossbar reports the same map.
  Crossbar b(16, DeviceParams{});
  b.enable_wear_leveling(tight_leveling());
  ASSERT_TRUE(b.restore_wear_map(map));
  const WearMap restored = b.wear_map();
  EXPECT_EQ(restored.rotation, map.rotation);
  EXPECT_EQ(restored.row_writes, map.row_writes);
  EXPECT_EQ(restored.remap, map.remap);
  EXPECT_EQ(b.rows_remapped(), a.rows_remapped());

  // Wrong array size or spare pool: refused, state untouched.
  Crossbar wrong_size(32, DeviceParams{});
  wrong_size.enable_wear_leveling(tight_leveling());
  EXPECT_FALSE(wrong_size.restore_wear_map(map));
  WearLevelingParams other_pool = tight_leveling();
  other_pool.spare_rows = 8;
  Crossbar wrong_pool(16, DeviceParams{});
  wrong_pool.enable_wear_leveling(other_pool);
  EXPECT_FALSE(wrong_pool.restore_wear_map(map));
  // An empty map (nothing tracked yet) is a no-op, not an error.
  EXPECT_TRUE(b.restore_wear_map(WearMap{}));
}

// --- Analytic injector ------------------------------------------------------

/// Endurance so poor that a handful of campaigns wears out a visible cell
/// fraction (eta = 10 campaigns) — wear events arrive fast enough to
/// exercise the whole ladder inside a short test.
FaultScheduleParams worn_leveled(int spare_rows) {
  FaultScheduleParams p;
  p.endurance.characteristic_cycles = 10.0;
  p.endurance.shape = 1.8;
  p.leveling.enabled = true;
  p.leveling.spare_rows = spare_rows;
  return p;
}

TEST(WearLevelingInjector, SparePoolAbsorbsWearBeforeAnyCellSticks) {
  FaultInjector inj(worn_leveled(512), 42);
  FaultScheduleParams plain = worn_leveled(512);
  plain.leveling = WearLevelingParams{};
  FaultInjector unleveled(plain, 42);
  for (int k = 0; k < 8; ++k) {
    inj.program_campaign();
    unleveled.program_campaign();
  }
  // The unleveled device shows stuck cells by now; the leveled one has
  // remapped that wear onto spares and stays clean.
  EXPECT_GT(unleveled.stuck_cell_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(inj.stuck_cell_fraction(), 0.0);
  EXPECT_GT(inj.rows_remapped(), 0);
  EXPECT_EQ(inj.crossbars_retired(), 0);
  EXPECT_LT(inj.spares_remaining(), 512);
  EXPECT_GT(inj.writes_leveled(), 0);
}

TEST(WearLevelingInjector, PoolExhaustionRetiresCrossbarAndResetsWear) {
  FaultInjector inj(worn_leveled(2), 42);
  int retired_at = -1;
  for (int k = 0; k < 40 && retired_at < 0; ++k) {
    inj.program_campaign();
    if (inj.crossbars_retired() > 0) retired_at = k;
  }
  ASSERT_GE(retired_at, 0) << "2-row pool must exhaust within 40 campaigns";
  // Migration to the fresh array clears every visible wear symptom.
  EXPECT_DOUBLE_EQ(inj.stuck_cell_fraction(), 0.0);
  EXPECT_EQ(inj.failed_wordlines(), 0);
  EXPECT_EQ(inj.failed_bitlines(), 0);
  EXPECT_EQ(inj.spares_remaining(), 2);  // new array, full pool
  // Retired pools stay counted in the remap total.
  EXPECT_GE(inj.rows_remapped(), inj.crossbars_retired() * 2);
}

TEST(WearLevelingInjector, FastForwardReplaysRetirementDeterministically) {
  FaultInjector lived(worn_leveled(2), 7);
  for (int k = 0; k < 30; ++k) lived.program_campaign();
  ASSERT_GT(lived.crossbars_retired(), 0);

  FaultInjector replayed(worn_leveled(2), 7);
  ASSERT_TRUE(replayed.fast_forward(lived.wear_state()));
  EXPECT_EQ(replayed.crossbars_retired(), lived.crossbars_retired());
  EXPECT_EQ(replayed.rows_remapped(), lived.rows_remapped());
  EXPECT_EQ(replayed.spares_remaining(), lived.spares_remaining());
  EXPECT_DOUBLE_EQ(replayed.fault_fraction(), lived.fault_fraction());

  // A different seed retires on a different schedule, so the fingerprint
  // (which includes the retirement count) tells them apart.
  FaultInjector other(worn_leveled(2), 8);
  for (int k = 0; k < 30; ++k) other.program_campaign();
  if (other.crossbars_retired() != lived.crossbars_retired()) {
    EXPECT_FALSE(FaultInjector(worn_leveled(2), 8)
                     .fast_forward(lived.wear_state()));
  }
}

TEST(WearLevelingInjector, WearHotRisesWithCampaignsAndClearsOnRetirement) {
  // A 512-row pool spreads wear 0.2x per campaign: the device crosses the
  // wear-hot band well before the pool exhausts (a tiny pool would retire
  // on the very first campaign, before any budget is visibly consumed).
  FaultScheduleParams p = worn_leveled(512);
  p.leveling.wear_budget_percent = 80;
  FaultInjector inj(p, 42);
  EXPECT_FALSE(inj.wear_hot());  // fresh device
  bool saw_hot = false;
  int retired = 0;
  for (int k = 0; k < 40; ++k) {
    inj.program_campaign();
    if (inj.crossbars_retired() == 0 && inj.wear_hot()) saw_hot = true;
    if (inj.crossbars_retired() > retired) {
      retired = inj.crossbars_retired();
      // Migration resets the budget clock: the fresh array is not hot.
      EXPECT_FALSE(inj.wear_hot()) << "campaign " << k;
    }
  }
  EXPECT_TRUE(saw_hot) << "device must pass through the wear-hot band";
  ASSERT_GT(retired, 0);
}

TEST(WearLevelingInjector, DisabledLevelingIsBitIdenticalToLegacyWalk) {
  FaultScheduleParams p;
  p.endurance.characteristic_cycles = 10.0;
  p.endurance.shape = 1.8;
  p.wordline_fail_rate = 0.02;
  p.bitline_fail_rate = 0.02;
  p.write_fail_rate = 0.1;
  FaultScheduleParams leveled_off = p;
  leveled_off.leveling.enabled = false;
  FaultInjector a(p, 99);
  FaultInjector b(leveled_off, 99);
  for (int k = 0; k < 25; ++k) {
    EXPECT_EQ(a.program_campaign(), b.program_campaign());
    EXPECT_DOUBLE_EQ(a.fault_fraction(), b.fault_fraction());
  }
  EXPECT_EQ(b.rows_remapped(), 0);
  EXPECT_EQ(b.writes_leveled(), 0);
  EXPECT_FALSE(b.wear_hot());
}

}  // namespace
}  // namespace reram — serving-level campaign below uses core types.

namespace odin::core {
namespace {

// --- Serving: retirement and migration --------------------------------------

struct ServeFixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 21);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 22);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b};
  }
  ServingConfig config() const {
    ServingConfig cfg;
    cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 80};
    cfg.segments = 4;
    cfg.odin.buffer_capacity = 12;
    cfg.odin.update_options.epochs = 30;
    return cfg;
  }
  policy::OuPolicy fresh_policy() const {
    return policy::OuPolicy(ou::OuLevelGrid(128));
  }
  /// Endurance brutal enough that the tiny spare pool exhausts and the
  /// crossbar retires within the 80-run horizon.
  reram::FaultScheduleParams leveled_faults(int spare_rows = 2) const {
    reram::FaultScheduleParams p;
    p.endurance.characteristic_cycles = 10.0;
    p.endurance.shape = 1.8;
    p.leveling.enabled = true;
    p.leveling.spare_rows = spare_rows;
    p.leveling.wear_budget_percent = 80;
    return p;
  }
};

TEST(WearLevelingServing, RetirementMigratesTenantInsteadOfDegrading) {
  ServeFixture fx;
  reram::FaultInjector faults(fx.leveled_faults(), 0x5eed);
  const auto result = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.fresh_policy(), fx.config(),
                                      &faults);
  // Brutal wear + a 2-row pool: the device must have burned through at
  // least one full pool and migrated.
  EXPECT_GE(result.total_crossbars_retired(), 1);
  EXPECT_GE(result.total_rows_remapped(), result.total_crossbars_retired() * 2);
  EXPECT_GT(result.total_writes_leveled(), 0);
  // Migration (not degradation): spares absorb the wear the unleveled walk
  // would have served as stuck cells, so no tenant ends degraded.
  EXPECT_EQ(result.total_degraded_runs(), 0);
  // The per-tenant attribution must account for exactly the device totals.
  EXPECT_EQ(result.total_crossbars_retired(), faults.crossbars_retired());
  EXPECT_EQ(result.total_rows_remapped(), faults.rows_remapped());
  EXPECT_EQ(result.total_writes_leveled(), faults.writes_leveled());
  EXPECT_LE(result.spares_remaining(), 2);
  // Every run was served: migration never drops traffic.
  EXPECT_EQ(result.total_runs(), 80);
}

TEST(WearLevelingServing, BreakerIsNotTrippedByRetirement) {
  ServeFixture fx;
  ServingConfig cfg = fx.config();
  cfg.resilience.enabled = true;  // default SLO is infinite: no deadline
                                  // pressure, isolate the retirement path
  reram::FaultInjector faults(fx.leveled_faults(), 0x5eed);
  const auto result = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                      fx.fresh_policy(), cfg, &faults);
  EXPECT_GE(result.total_crossbars_retired(), 1);
  // Retirement campaigns ride the success path: the breaker never opens on
  // a planned migration, so no run is served from the degraded fallback.
  EXPECT_EQ(result.total_breaker_opens(), 0);
  EXPECT_EQ(result.total_breaker_open_runs(), 0);
  EXPECT_EQ(result.total_runs(), 80);
}

TEST(WearLevelingServing, LeveledWalkMatchesUnleveledCadence) {
  // Equal-EDP guarantee: under leveling the spares absorb all visible wear,
  // so at a realistic endurance (default eta = 2e5 campaigns — the device
  // never gets wear-hot inside one horizon) the controller sees the same
  // healthy device the no-fault walk sees: identical reprogram cadence,
  // identical EDP.
  ServeFixture fx;
  reram::FaultScheduleParams p;  // default endurance, leveling on
  p.leveling.enabled = true;
  p.leveling.spare_rows = 32;
  reram::FaultInjector faults(p, 0x5eed);
  const auto leveled = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                       fx.fresh_policy(), fx.config(),
                                       &faults);
  const auto clean = serve_with_odin(fx.tenants(), fx.nonideal, fx.cost,
                                     fx.fresh_policy(), fx.config(), nullptr);
  EXPECT_EQ(leveled.total_runs(), clean.total_runs());
  EXPECT_EQ(leveled.total_degraded_runs(), 0);
  EXPECT_EQ(leveled.total_wear_deferred_reprograms(), 0);
  EXPECT_DOUBLE_EQ(leveled.total_edp(), clean.total_edp());
}

}  // namespace
}  // namespace odin::core
