// End-to-end integration: offline bootstrap -> online adaptation on an
// unseen model -> horizon totals. Exercises the full Algorithm 1 pipeline
// the way the Fig. 5/6/8 benches do, at test scale.
#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/experiment.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

class Pipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    known_a_ = std::make_unique<ou::MappedModel>(testing::tiny_mapped(128, 11));
    known_b_ = std::make_unique<ou::MappedModel>(testing::tiny_mapped(128, 22));
    unseen_ = std::make_unique<ou::MappedModel>(testing::tiny_mapped(128, 99));
  }

  policy::OuPolicy bootstrap() {
    policy::OfflineTrainConfig cfg;
    cfg.time_samples = 5;
    cfg.train_options.epochs = 120;
    const std::vector<const ou::MappedModel*> known{known_a_.get(),
                                                    known_b_.get()};
    return policy::train_offline_policy(known, nonideal_, cost_, grid_, cfg);
  }

  ou::OuLevelGrid grid_{128};
  ou::NonIdealityModel nonideal_{reram::DeviceParams{},
                                 ou::NonIdealityParams{}};
  ou::OuCostModel cost_{ou::CostParams{}, reram::DeviceParams{}};
  std::unique_ptr<ou::MappedModel> known_a_, known_b_, unseen_;
};

TEST_F(Pipeline, OfflinePolicyTransfersToUnseenModel) {
  policy::OuPolicy offline = bootstrap();
  policy::OuPolicy untrained(grid_);

  // Measure first-run mismatch rates on the unseen model: the bootstrapped
  // policy should agree with the search more often than a random one.
  auto mismatch_rate = [&](policy::OuPolicy policy) {
    OdinController ctl(*unseen_, nonideal_, cost_, std::move(policy));
    const RunResult run = ctl.run_inference(1.0);
    return static_cast<double>(run.mismatches) / run.decisions.size();
  };
  const double offline_rate = mismatch_rate(std::move(offline));
  const double untrained_rate = mismatch_rate(std::move(untrained));
  EXPECT_LE(offline_rate, untrained_rate);
}

TEST_F(Pipeline, OdinBeatsEveryHomogeneousBaselineOnTotalEdp) {
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8, .runs = 250};
  OdinController controller(*unseen_, nonideal_, cost_, bootstrap());
  const auto odin = simulate_odin(controller, horizon);

  for (const ou::OuConfig cfg : paper_baseline_configs()) {
    const auto base =
        simulate_homogeneous(*unseen_, nonideal_, cost_, cfg, horizon);
    EXPECT_LT(odin.total_edp(), base.total_edp()) << cfg.to_string();
  }
}

TEST_F(Pipeline, OdinHoldsAccuracyWhileBaselineWithoutReprogramDecays) {
  const AccuracyModel accuracy{AccuracyParams{}};
  OdinController controller(*unseen_, nonideal_, cost_, bootstrap());

  double odin_min_acc = 1.0;
  for (double t : {1.0, 1e3, 1e6, 3e7, 9.9e7}) {
    const RunResult run = controller.run_inference(t);
    std::vector<ou::OuConfig> configs;
    configs.reserve(run.decisions.size());
    for (const auto& d : run.decisions) configs.push_back(d.executed);
    odin_min_acc = std::min(
        odin_min_acc,
        accuracy.estimate(*unseen_, configs, run.elapsed_s, nonideal_));
  }
  const double static_acc_end = accuracy.estimate_homogeneous(
      *unseen_, {16, 16}, 9.9e7, nonideal_);
  EXPECT_GT(odin_min_acc, 0.85 * accuracy.params().ideal_accuracy);
  EXPECT_LT(static_acc_end, odin_min_acc);
}

TEST_F(Pipeline, OnlineUpdatesBeatAFrozenPolicy) {
  // The claim behind Fig. 5: starting from the same (here: untrained)
  // parameters, a policy that keeps learning from the search's corrections
  // agrees with the best decisions far more often than one that never
  // updates (frozen = buffer too large to ever fill).
  OdinConfig adapting;
  adapting.buffer_capacity = 10;
  adapting.update_options.epochs = 80;
  OdinConfig frozen;
  frozen.buffer_capacity = 100'000;

  OdinController adaptive(*unseen_, nonideal_, cost_,
                          policy::OuPolicy(grid_), adapting);
  OdinController fixed(*unseen_, nonideal_, cost_, policy::OuPolicy(grid_),
                       frozen);
  const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e6, .runs = 60};
  int adaptive_mismatches = 0, fixed_mismatches = 0;
  for (double t : run_schedule(horizon)) {
    adaptive_mismatches += adaptive.run_inference(t).mismatches;
    fixed_mismatches += fixed.run_inference(t).mismatches;
  }
  EXPECT_GE(adaptive.update_count(), 1);
  EXPECT_EQ(fixed.update_count(), 0);
  EXPECT_LT(adaptive_mismatches, fixed_mismatches);
}

TEST_F(Pipeline, CrossbarSizeSweepKeepsOdinAhead) {
  // Fig. 9's qualitative claim on the tiny workload: Odin's advantage
  // holds across 128/64/32 crossbars.
  for (int crossbar : {128, 64, 32}) {
    ou::MappedModel model = testing::tiny_mapped(crossbar, 7);
    const ou::OuLevelGrid grid(crossbar);
    const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                        ou::NonIdealityParams{}, crossbar};
    OdinController controller(model, nonideal, cost_,
                              policy::OuPolicy(grid));
    const HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8,
                                .runs = 150};
    const auto odin = simulate_odin(controller, horizon);
    const auto base =
        simulate_homogeneous(model, nonideal, cost_, {16, 16}, horizon);
    EXPECT_LT(odin.total_edp(), base.total_edp()) << crossbar;
  }
}

}  // namespace
}  // namespace odin::core
