// Tests for the layer -> crossbar -> OU-block mapper and its sparsity
// exploitation, including property sweeps across the OU grid.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dnn/pattern.hpp"
#include "ou/mapped_model.hpp"
#include "ou/mapper.hpp"

namespace odin::ou {
namespace {

dnn::LayerDescriptor layer_of(int fan_in, int outputs, int positions = 4) {
  dnn::LayerDescriptor l;
  l.name = "L";
  l.fan_in = fan_in;
  l.outputs = outputs;
  l.spatial_positions = positions;
  l.kernel = 3;
  l.in_channels = fan_in / 9;
  l.out_channels = outputs;
  return l;
}

dnn::WeightPattern dense_pattern(int rows, int cols) {
  dnn::WeightPattern p(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) p.set(r, c);
  return p;
}

TEST(Mapper, DenseLayerCountsMatchClosedForm) {
  const auto layer = layer_of(256, 256, 10);
  const auto pattern = dense_pattern(256, 256);
  const LayerMapping mapping(layer, pattern, 128);
  EXPECT_EQ(mapping.crossbars(), 4);  // 2x2 crossbar grid
  const OuCounts counts = mapping.counts({16, 16});
  // Per crossbar: (128/16)^2 = 64 blocks, all live.
  EXPECT_EQ(counts.live_blocks, 4 * 64);
  EXPECT_EQ(counts.max_blocks_per_xbar, 64);
  EXPECT_EQ(counts.total_ou_cycles, 4 * 64 * 10);
  EXPECT_EQ(counts.max_ou_cycles_per_xbar, 64 * 10);
  EXPECT_DOUBLE_EQ(counts.occupancy, 1.0);
}

TEST(Mapper, NonAlignedDimsUseCeil) {
  const auto layer = layer_of(27, 64, 1);  // first conv of a CIFAR net
  const auto pattern = dense_pattern(27, 64);
  const LayerMapping mapping(layer, pattern, 128);
  EXPECT_EQ(mapping.crossbars(), 1);
  const OuCounts counts = mapping.counts({16, 16});
  // Rows: ceil(27/16) = 2 bands; cols: ceil(64/16) = 4.
  EXPECT_EQ(counts.live_blocks, 8);
}

TEST(Mapper, NonPowerOfTwoOuSizesWork) {
  // The 9x8 homogeneous baseline from prior work is not on the 2^L grid.
  const auto layer = layer_of(128, 128, 1);
  const auto pattern = dense_pattern(128, 128);
  const LayerMapping mapping(layer, pattern, 128);
  const OuCounts counts = mapping.counts({9, 8});
  EXPECT_EQ(counts.live_blocks,
            static_cast<std::int64_t>(15) * 16);  // ceil(128/9) x 128/8
}

TEST(Mapper, FullyZeroBlocksAreSkipped) {
  const auto layer = layer_of(32, 32, 1);
  dnn::WeightPattern p(32, 32);
  // Only the top-left 8x8 corner carries weights.
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) p.set(r, c);
  const LayerMapping mapping(layer, p, 128);
  EXPECT_EQ(mapping.counts({8, 8}).live_blocks, 1);
  EXPECT_EQ(mapping.counts({4, 4}).live_blocks, 4);
  EXPECT_EQ(mapping.counts({16, 16}).live_blocks, 1);
  EXPECT_EQ(mapping.counts({32, 32}).live_blocks, 1);
}

TEST(Mapper, OccupancyDecreasesWithFinerBlocksOnSparseRows) {
  const auto layer = layer_of(128, 128, 1);
  common::Rng rng(5);
  dnn::WeightPattern p(128, 128);
  // 25% of rows live, dense across columns (row-structured sparsity).
  for (int r = 0; r < 128; r += 4)
    for (int c = 0; c < 128; ++c) p.set(r, c);
  const LayerMapping mapping(layer, p, 128);
  // R = 4 captures exactly one live row per band -> all bands live;
  // R = 1-row granularity would skip 75%. Between grid sizes:
  const auto c4 = mapping.counts({4, 128});
  const auto c16 = mapping.counts({16, 128});
  // Finer rows -> more blocks but occupancy cannot increase.
  EXPECT_GE(c4.live_blocks, c16.live_blocks);
  EXPECT_LE(c16.occupancy, 1.0);
}

TEST(Mapper, CountsAreCachedAndStable) {
  const auto layer = layer_of(64, 64, 2);
  const auto pattern = dense_pattern(64, 64);
  const LayerMapping mapping(layer, pattern, 64);
  const OuCounts& a = mapping.counts({8, 8});
  const OuCounts& b = mapping.counts({8, 8});
  EXPECT_EQ(&a, &b);  // same cached object
}

TEST(Mapper, ProgrammedCellsEqualsPatternNonzeros) {
  const auto layer = layer_of(64, 64, 1);
  dnn::WeightPattern p(64, 64);
  p.set(0, 0);
  p.set(63, 63);
  const LayerMapping mapping(layer, p, 64);
  EXPECT_EQ(mapping.programmed_cells(), 2);
  EXPECT_EQ(mapping.programmed_rows(), 64);
}

// Property sweep over the whole OU grid on a randomly pruned layer.
class MapperGridSweep : public ::testing::TestWithParam<int> {};

TEST_P(MapperGridSweep, InvariantsHoldForEveryConfig) {
  const int crossbar = GetParam();
  const auto layer = layer_of(200, 150, 3);
  common::Rng rng(77);
  dnn::WeightPattern p(200, 150);
  for (int r = 0; r < 200; ++r)
    for (int c = 0; c < 150; ++c)
      if (rng.bernoulli(0.3)) p.set(r, c);
  const LayerMapping mapping(layer, p, crossbar);
  const OuLevelGrid grid(crossbar);

  std::int64_t prev_live = -1;
  for (const OuConfig& cfg : grid.all_configs()) {
    const OuCounts counts = mapping.counts(cfg);
    EXPECT_GE(counts.live_blocks, 1);
    EXPECT_LE(counts.max_blocks_per_xbar, counts.live_blocks);
    EXPECT_EQ(counts.total_ou_cycles,
              counts.live_blocks * layer.spatial_positions);
    EXPECT_GT(counts.occupancy, 0.0);
    EXPECT_LE(counts.occupancy, 1.0);
    // Every non-zero weight is covered by some live block: the live blocks'
    // total capacity bounds the non-zero count.
    EXPECT_GE(counts.live_blocks * static_cast<std::int64_t>(cfg.rows) *
                  cfg.cols,
              p.nonzeros());
    (void)prev_live;
    prev_live = counts.live_blocks;
  }
}

INSTANTIATE_TEST_SUITE_P(CrossbarSizes, MapperGridSweep,
                         ::testing::Values(32, 64, 128));

TEST(MappedModel, BindsLayersAndPatterns) {
  dnn::DnnModel model;
  model.name = "tiny";
  for (int i = 0; i < 3; ++i) {
    auto l = layer_of(64, 64, 2);
    l.index = i;
    l.name = "l" + std::to_string(i);
    model.layers.push_back(l);
  }
  MappedModel mapped(dnn::prune_model(std::move(model), 9), 64);
  EXPECT_EQ(mapped.layer_count(), 3u);
  EXPECT_EQ(mapped.crossbar_size(), 64);
  for (std::size_t i = 0; i < mapped.layer_count(); ++i) {
    EXPECT_EQ(&mapped.mapping(i).layer(), &mapped.model().layers[i]);
    EXPECT_EQ(mapped.mapping(i).programmed_cells(),
              mapped.pruned().patterns[i].nonzeros());
  }
}

}  // namespace
}  // namespace odin::ou
