// Cooperative cancellation plumbing under the serving resilience layer:
// CancellationToken-aware pool regions, the hung-work Watchdog, and the
// two-clock Deadline token (simulated budget + optional wall-clock cancel).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/deadline.hpp"
#include "common/parallel.hpp"

namespace odin::common {
namespace {

TEST(Cancellation, TokenIsAOneWayLatchUntilReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, PreCancelledTokenSkipsTheWholeRegion) {
  CancellationToken token;
  token.cancel();
  std::atomic<int> visited{0};
  parallel_for(0, 1000, 16,
               [&](std::size_t) {
                 visited.fetch_add(1, std::memory_order_relaxed);
               },
               /*cost_hint_ns=*/0, &token);
  EXPECT_EQ(visited.load(), 0);
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, MidFlightCancelSkipsUnclaimedChunks) {
  // The first chunk to execute cancels the token; chunks not yet claimed
  // must be skipped (cooperative, not preemptive — chunks already running
  // do finish). Grain 1 over a large range with a per-body delay gives the
  // workers no chance to have claimed everything before the cancel lands.
  // A single-lane pool runs the region inline, where the skip check never
  // runs — force real workers so the claim loop is what executes.
  const int lanes_before = ThreadPool::instance().threads();
  ThreadPool::instance().set_threads(4);
  CancellationToken token;
  std::atomic<int> visited{0};
  parallel_for(0, 10'000, 1,
               [&](std::size_t) {
                 token.cancel();
                 visited.fetch_add(1, std::memory_order_relaxed);
                 std::this_thread::sleep_for(std::chrono::microseconds(50));
               },
               /*cost_hint_ns=*/0, &token);
  EXPECT_TRUE(token.cancelled());
  const int n = visited.load();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 5'000) << "cancellation left most of the range unvisited";
  ThreadPool::instance().set_threads(lanes_before);
}

TEST(Watchdog, FiresOnOverrunAndCancelsTheToken) {
  const long long pool_stalls_before = ThreadPool::stall_count();
  Watchdog dog;
  CancellationToken token;
  dog.arm(&token, std::chrono::milliseconds(10));
  // Simulated hung worker: spins until cancelled. The failsafe bound only
  // exists so a broken watchdog fails the test instead of hanging it.
  const auto failsafe =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!token.cancelled() &&
         std::chrono::steady_clock::now() < failsafe) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(dog.disarm());
  EXPECT_EQ(dog.stall_count(), 1);
  EXPECT_GE(ThreadPool::stall_count(), pool_stalls_before + 1);
}

TEST(Watchdog, DisarmInTimeLeavesTokenUntouchedAndRearms) {
  Watchdog dog;
  CancellationToken token;
  dog.arm(&token, std::chrono::seconds(60));
  EXPECT_FALSE(dog.disarm());  // well within the bound
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(dog.stall_count(), 0);
  // The same instance guards the next operation; a fire there must not be
  // confused with the disarmed one (generation protocol).
  dog.arm(&token, std::chrono::milliseconds(5));
  const auto failsafe =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!token.cancelled() &&
         std::chrono::steady_clock::now() < failsafe) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(dog.disarm());
  EXPECT_EQ(dog.stall_count(), 1);
  token.reset();
}

TEST(Watchdog, CancelledTokenMakesPoolRegionReturnEarlyNotDeadlock) {
  // End-to-end: a pool region whose body hangs until cancelled. With the
  // watchdog armed the region must come back (chunks poll the token /
  // unclaimed chunks are skipped) rather than deadlocking the pool.
  Watchdog dog;
  CancellationToken token;
  std::atomic<int> started{0};
  dog.arm(&token, std::chrono::milliseconds(20));
  parallel_for_chunks(0, 64, 8,
                      [&](std::size_t, std::size_t) {
                        started.fetch_add(1, std::memory_order_relaxed);
                        const auto failsafe =
                            std::chrono::steady_clock::now() +
                            std::chrono::seconds(10);
                        while (!token.cancelled() &&
                               std::chrono::steady_clock::now() < failsafe) {
                          std::this_thread::yield();
                        }
                      },
                      /*cost_hint_ns=*/0, &token);
  EXPECT_TRUE(dog.disarm());
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(started.load(), 1);
  EXPECT_LT(started.load(), 64 / 8 + 1);  // some chunks were skipped... or
  // every lane was mid-chunk when the cancel landed; either way we are
  // provably not deadlocked because we got here.
}

// --- Deadline: the simulated-seconds budget the serving loop hands the
// --- controller, with the watchdog's token as the wall-clock escape hatch.

TEST(Deadline, ChargesSimulatedWorkAndExpiresExactly) {
  Deadline d(1.0, /*eval_cost_s=*/0.1);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.allows(1.0));
  EXPECT_FALSE(d.allows(1.5));
  EXPECT_TRUE(d.charge(0.25));
  EXPECT_DOUBLE_EQ(d.remaining_s(), 0.75);
  EXPECT_TRUE(d.charge_evaluations(5));  // 0.5 s
  EXPECT_DOUBLE_EQ(d.remaining_s(), 0.25);
  EXPECT_FALSE(d.allows(0.5));
  // Charging committed work past the budget reports exhaustion.
  EXPECT_FALSE(d.charge(0.5));
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(d.allows(0.0));
}

TEST(Deadline, ZeroBudgetIsBornExpired) {
  Deadline d(0.0);
  EXPECT_TRUE(d.expired());
  Deadline negative(-1.0);
  EXPECT_TRUE(negative.expired());
}

TEST(Deadline, WallClockCancellationExpiresAHealthyBudget) {
  CancellationToken token;
  Deadline d(1e9, /*eval_cost_s=*/0.0, &token);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.allows(1.0));
  token.cancel();  // what the watchdog does on a hung run
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(d.allows(0.0));
  EXPECT_GT(d.remaining_s(), 0.0);  // the simulated budget was untouched
}

}  // namespace
}  // namespace odin::common
