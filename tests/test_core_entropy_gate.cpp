// Tests for the entropy-gated search extension.
#include <gtest/gtest.h>

#include "core/odin.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  OdinController controller(double gate, std::size_t buffer = 50) {
    OdinConfig cfg;
    cfg.entropy_gate = gate;
    cfg.buffer_capacity = buffer;
    return OdinController(model, nonideal, cost,
                          policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  }
};

TEST(EntropyGate, DisabledGateNeverSkips) {
  Fixture fx;
  auto ctl = fx.controller(-1.0);
  for (double t : {1.0, 10.0, 100.0})
    EXPECT_EQ(ctl.run_inference(t).searches_skipped, 0);
}

TEST(EntropyGate, FullyOpenGateSkipsEveryFeasiblePrediction) {
  Fixture fx;
  auto ctl = fx.controller(1.1);  // entropy is always < 1.1
  const RunResult run = ctl.run_inference(1.0);
  // Every layer whose prediction was feasible skipped its search.
  int feasible_predictions = 0;
  const int n = static_cast<int>(run.decisions.size());
  for (int j = 0; j < n; ++j) {
    const auto& d = run.decisions[static_cast<std::size_t>(j)];
    if (fx.nonideal.feasible(run.elapsed_s, d.policy_choice,
                             fx.nonideal.layer_sensitivity(j, n)))
      ++feasible_predictions;
  }
  EXPECT_EQ(run.searches_skipped, feasible_predictions);
  // Gated layers execute exactly the policy's choice with zero evaluations.
  for (const auto& d : run.decisions)
    if (d.evaluations == 0) {
      EXPECT_EQ(d.executed, d.policy_choice);
      EXPECT_FALSE(d.mismatch);
    }
}

TEST(EntropyGate, GatedLayersProduceNoTrainingExamples) {
  Fixture fx;
  auto gated = fx.controller(1.1, /*buffer=*/4);
  auto vanilla = fx.controller(-1.0, /*buffer=*/4);
  int gated_updates = 0, vanilla_updates = 0;
  for (int i = 0; i < 4; ++i) {
    if (gated.run_inference(1.0 + i).policy_updated) ++gated_updates;
    if (vanilla.run_inference(1.0 + i).policy_updated) ++vanilla_updates;
  }
  // The untrained-but-confident gated policy never fills its buffer from
  // skipped layers; the vanilla controller does.
  EXPECT_LE(gated_updates, vanilla_updates);
  EXPECT_GE(vanilla_updates, 1);
}

TEST(EntropyGate, InfeasiblePredictionStillSearches) {
  // Late in the horizon the (untrained) policy's coarse predictions are
  // infeasible: the gate must not bypass the constraint check.
  Fixture fx;
  auto ctl = fx.controller(1.1);
  const RunResult run = ctl.run_inference(4e7);
  const int n = static_cast<int>(run.decisions.size());
  for (int j = 0; j < n; ++j) {
    const auto& d = run.decisions[static_cast<std::size_t>(j)];
    EXPECT_TRUE(fx.nonideal.feasible(run.elapsed_s, d.executed,
                                     fx.nonideal.layer_sensitivity(j, n)))
        << j;
  }
}

TEST(EntropyGate, SkippingReducesTotalEvaluations) {
  Fixture fx;
  auto gated = fx.controller(1.1);
  auto vanilla = fx.controller(-1.0);
  int gated_evals = 0, vanilla_evals = 0;
  for (double t : {1.0, 2.0, 4.0, 8.0}) {
    for (const auto& d : gated.run_inference(t).decisions)
      gated_evals += d.evaluations;
    for (const auto& d : vanilla.run_inference(t).decisions)
      vanilla_evals += d.evaluations;
  }
  EXPECT_LT(gated_evals, vanilla_evals);
}

}  // namespace
}  // namespace odin::core
