// Tests for hardware-in-the-loop MLP inference on behavioural crossbars.
#include <gtest/gtest.h>

#include <cmath>

#include "core/hardware_inference.hpp"
#include "data/synthetic.hpp"

namespace odin::core {
namespace {

/// Shared trained reference model + datasets (training once keeps the suite
/// fast; every test treats them as read-only).
class HardwareFixture : public ::testing::Test {
 protected:
  struct State {
    nn::MultiHeadMlp model;
    nn::Dataset train;
    nn::Dataset test;
    double software_accuracy;
  };

  static State& state() {
    static State s = [] {
      data::SyntheticDataset dataset(
          data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 77);
      nn::MultiHeadMlp model(
          nn::MlpConfig{.inputs = dataset.feature_count(4), .hidden = {48},
                        .heads = {10}},
          5);
      nn::Dataset train = dataset.as_feature_dataset(400, 4);
      nn::Dataset all = dataset.as_feature_dataset(520, 4);
      nn::Dataset test;
      test.inputs = nn::Matrix(120, all.inputs.cols());
      test.labels.assign(1, std::vector<int>(120));
      for (std::size_t i = 0; i < 120; ++i) {
        auto src = all.inputs.row(400 + i);
        std::copy(src.begin(), src.end(), test.inputs.row(i).begin());
        test.labels[0][i] = all.labels[0][400 + i];
      }
      nn::TrainOptions opt;
      opt.epochs = 30;
      opt.batch_size = 32;
      opt.learning_rate = 3e-3;
      nn::fit(model, train, opt);
      const double acc = nn::exact_match_accuracy(model, test);
      return State{std::move(model), std::move(train), std::move(test), acc};
    }();
    return s;
  }
};

TEST_F(HardwareFixture, SoftwareReferenceLearns) {
  EXPECT_GT(state().software_accuracy, 0.8);
}

TEST_F(HardwareFixture, FreshCellsFineOuMatchesSoftware) {
  HardwareMlpRunner hw(state().model, reram::DeviceParams{});
  const double acc = hw.accuracy(state().test, {8, 8}, 1.0);
  EXPECT_GT(acc, state().software_accuracy - 0.08);
}

/// Mean logit distance of the hardware forward pass at time `t` from its
/// own fresh-cell (t = t0) output — the analog datapath's fidelity drift.
double logit_drift(HardwareMlpRunner& hw, const nn::Dataset& data,
                   double t_s) {
  double acc = 0.0;
  constexpr std::size_t kSamples = 20;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto fresh = hw.logits(data.inputs.row(i), {16, 16}, 1.0);
    const auto later = hw.logits(data.inputs.row(i), {16, 16}, t_s);
    double d = 0.0, norm = 0.0;
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      d += (fresh[k] - later[k]) * (fresh[k] - later[k]);
      norm += fresh[k] * fresh[k];
    }
    acc += std::sqrt(d / std::max(norm, 1e-12));
  }
  return acc / kSamples;
}

TEST_F(HardwareFixture, DriftVariationErodesSignalFidelity) {
  // Uniform drift is a per-layer scale that bipolar ADCs shrug off (sign
  // information survives quantization, so argmax accuracy barely moves on
  // an easy task); the honest circuit-level metric is logit fidelity,
  // which cell-to-cell drift variation erodes monotonically. With the
  // paper's printed v = 0.2 and +-10% per-cell spread, relative weight
  // distortion reaches ~e^{+-0.37} by 1e8 s.
  reram::DeviceParams fast_drift;
  fast_drift.drift_coefficient =
      reram::DeviceParams::paper_drift_coefficient;
  HardwareMlpRunner hw(state().model, fast_drift, 128, /*noise_seed=*/42);
  const double early = logit_drift(hw, state().test, 1e2);
  const double late = logit_drift(hw, state().test, 1e8);
  EXPECT_GT(late, early);
  EXPECT_GT(late, 0.3);  // the signal is substantially corrupted
}

TEST_F(HardwareFixture, ReprogrammingRestoresSignalFidelity) {
  reram::DeviceParams fast_drift;
  fast_drift.drift_coefficient =
      reram::DeviceParams::paper_drift_coefficient;
  HardwareMlpRunner hw(state().model, fast_drift, 128, /*noise_seed=*/42);
  const double drifted = logit_drift(hw, state().test, 1e8);
  hw.program(1e8);  // reprogram: drift clock resets (cells re-targeted)
  const double refreshed = logit_drift(hw, state().test, 1e8 + 1.0);
  EXPECT_LT(refreshed, 0.5 * drifted);
  // Accuracy stays at the software level after the refresh.
  EXPECT_GT(hw.accuracy(state().test, {16, 16}, 1e8 + 1.0),
            state().software_accuracy - 0.12);
}

TEST_F(HardwareFixture, CalibratedDriftIsHarmlessWithinTheHorizon) {
  // With the DESIGN.md §4 calibrated v = 0.00213 the per-cell spread stays
  // under a percent across [t0, 1e8 s] — consistent with the excess-based
  // accuracy surrogate that charges no loss within the budgets.
  HardwareMlpRunner hw(state().model, reram::DeviceParams{}, 128,
                       /*noise_seed=*/42);
  const double fresh = hw.accuracy(state().test, {8, 8}, 1.0);
  const double late = hw.accuracy(state().test, {8, 8}, 3e7);
  EXPECT_GT(late, fresh - 0.06);
}

TEST_F(HardwareFixture, DeterministicWithoutNoise) {
  HardwareMlpRunner a(state().model, reram::DeviceParams{});
  HardwareMlpRunner b(state().model, reram::DeviceParams{});
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(a.predict(state().test.inputs.row(i), {16, 16}, 100.0),
              b.predict(state().test.inputs.row(i), {16, 16}, 100.0));
}

TEST_F(HardwareFixture, ProgrammedCellsMatchParameterCount) {
  HardwareMlpRunner hw(state().model, reram::DeviceParams{});
  // Every non-zero weight occupies a cell; a freshly trained dense net has
  // (almost) no exact zeros, so cells ~ weight count (excluding biases).
  const auto& cfg = state().model.config();
  const std::int64_t weights =
      static_cast<std::int64_t>(cfg.inputs) * 48 + 48 * 10;
  EXPECT_NEAR(static_cast<double>(hw.programmed_cells()),
              static_cast<double>(weights), 0.2 * weights);
}

TEST_F(HardwareFixture, NoiseSeedPerturbsButDoesNotDestroy) {
  HardwareMlpRunner noisy(state().model, reram::DeviceParams{}, 128, 99);
  const double acc = noisy.accuracy(state().test, {8, 8}, 1.0);
  EXPECT_GT(acc, state().software_accuracy - 0.15);
}

}  // namespace
}  // namespace odin::core
