// Tests for policy save/load round-tripping.
#include <gtest/gtest.h>

#include <sstream>

#include "policy/serialization.hpp"

namespace odin::policy {
namespace {

Features probe(double sparsity) {
  Features f;
  f.layer_position = 0.4;
  f.sparsity = sparsity;
  f.kernel = 3.0 / 7.0;
  f.log_time = 0.25;
  return f;
}

TEST(Serialization, RoundTripPreservesPredictions) {
  OuPolicy original{ou::OuLevelGrid(128)};
  // Nudge the parameters away from initialization so the test is not
  // trivially satisfied by re-initialization.
  for (nn::Parameter* p : original.mlp().parameters())
    for (double& v : p->value.flat()) v += 0.01;

  std::stringstream stream;
  save_policy(original, stream);
  auto loaded = load_policy(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().crossbar_size(), 128);

  for (double s : {0.0, 0.3, 0.7, 1.0}) {
    const auto a = original.predict_proba(probe(s));
    const auto b = loaded->predict_proba(probe(s));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t h = 0; h < a.size(); ++h)
      for (std::size_t k = 0; k < a[h].size(); ++k)
        EXPECT_DOUBLE_EQ(a[h][k], b[h][k]);
  }
}

TEST(Serialization, PreservesGridSize) {
  OuPolicy original{ou::OuLevelGrid(32)};
  std::stringstream stream;
  save_policy(original, stream);
  auto loaded = load_policy(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().crossbar_size(), 32);
  EXPECT_EQ(loaded->grid().levels(), 4);
}

TEST(Serialization, RejectsGarbage) {
  std::stringstream bad("not a policy at all");
  EXPECT_FALSE(load_policy(bad).has_value());
}

TEST(Serialization, RejectsTruncatedStream) {
  OuPolicy original{ou::OuLevelGrid(128)};
  std::stringstream stream;
  save_policy(original, stream);
  std::string text = stream.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_FALSE(load_policy(truncated).has_value());
}

TEST(Serialization, RejectsWrongVersion) {
  std::stringstream bad("odin-policy 99\n128 16\n");
  EXPECT_FALSE(load_policy(bad).has_value());
}

}  // namespace
}  // namespace odin::policy
