// Unit + property tests for the ReRAM device model (paper Eqs. 3-4).
#include <gtest/gtest.h>

#include <cmath>

#include "reram/device.hpp"

namespace odin::reram {
namespace {

DeviceParams params() { return DeviceParams{}; }

TEST(Device, TableIiDefaults) {
  const DeviceParams p = params();
  EXPECT_DOUBLE_EQ(p.g_on_s, 333e-6);
  EXPECT_DOUBLE_EQ(p.g_off_s, 0.33e-6);
  EXPECT_DOUBLE_EQ(p.r_wire_ohm, 1.0);
  EXPECT_EQ(p.bits_per_cell, 2);
  EXPECT_EQ(p.levels(), 4);
  EXPECT_DOUBLE_EQ(DeviceParams::paper_drift_coefficient, 0.2);
}

TEST(Device, DriftEqualsGonAtT0) {
  const DeviceParams p = params();
  EXPECT_DOUBLE_EQ(drift_conductance(p, p.t0_s), p.g_on_s);
  // Times before t0 clamp to t0 (model domain).
  EXPECT_DOUBLE_EQ(drift_conductance(p, 0.0), p.g_on_s);
}

TEST(Device, DriftFollowsEq3PowerLaw) {
  const DeviceParams p = params();
  for (double t : {10.0, 1e3, 1e6, 1e8}) {
    const double expected = p.g_on_s * std::pow(t, -p.drift_coefficient);
    EXPECT_NEAR(drift_conductance(p, t), expected, expected * 1e-12);
  }
}

TEST(Device, DriftIsMonotoneDecreasingInTime) {
  const DeviceParams p = params();
  double prev = drift_conductance(p, 1.0);
  for (double t = 10.0; t <= 1e8; t *= 10.0) {
    const double g = drift_conductance(p, t);
    EXPECT_LT(g, prev);
    prev = g;
  }
}

TEST(Device, EffectiveConductanceMatchesEq4ClosedForm) {
  const DeviceParams p = params();
  const double t = 1e4;
  const int rows = 16, cols = 16;
  const double g_drift = drift_conductance(p, t);
  const double expected =
      1.0 / (1.0 / g_drift + p.r_wire_ohm * (rows + cols));
  EXPECT_NEAR(effective_conductance(p, t, rows, cols), expected, 1e-18);
}

TEST(Device, ErrorComponentsSumToTotal) {
  const DeviceParams p = params();
  for (double t : {1.0, 1e2, 1e5, 1e8}) {
    for (int side : {4, 16, 64}) {
      const auto c = nonideality_components(p, t, side, side);
      EXPECT_NEAR(c.total(), relative_conductance_error(p, t, side, side),
                  1e-12);
      EXPECT_GE(c.drift, 0.0);
      EXPECT_GE(c.ir_drop, 0.0);
    }
  }
}

TEST(Device, DriftComponentIsOuIndependent) {
  const DeviceParams p = params();
  const double t = 1e5;
  const double d1 = nonideality_components(p, t, 4, 4).drift;
  const double d2 = nonideality_components(p, t, 64, 64).drift;
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(Device, AtT0ErrorIsPureIrDrop) {
  const DeviceParams p = params();
  const auto c = nonideality_components(p, p.t0_s, 16, 16);
  EXPECT_NEAR(c.drift, 0.0, 1e-12);
  // 333 uS * 1 ohm * 32 lines ~ 1.05% relative error.
  EXPECT_NEAR(c.ir_drop, 0.010544, 1e-4);
}

// Property sweep: the non-ideality factor is monotone in both time and
// activated line count (the physics Odin's shrinking policy relies on).
class NfMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(NfMonotonicity, IncreasesWithOuSize) {
  const DeviceParams p = params();
  const double t = GetParam();
  double prev = -1.0;
  for (int side : {4, 8, 16, 32, 64, 128}) {
    const double nf = relative_conductance_error(p, t, side, side);
    EXPECT_GT(nf, prev);
    prev = nf;
  }
}

TEST_P(NfMonotonicity, IncreasesWithTimeForAnyOu) {
  const DeviceParams p = params();
  const double t = GetParam();
  for (int side : {4, 16, 64}) {
    EXPECT_LT(relative_conductance_error(p, t, side, side),
              relative_conductance_error(p, t * 10.0, side, side));
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossHorizon, NfMonotonicity,
                         ::testing::Values(1.0, 1e2, 1e4, 1e6, 1e7));

TEST(Device, QuantizationRoundTripsLevelValues) {
  const DeviceParams p = params();
  // The 4 exact levels of a 2-bit cell survive the round trip.
  for (int level = 0; level < p.levels(); ++level) {
    const double w = static_cast<double>(level) / (p.levels() - 1);
    const double g = quantize_weight_to_conductance(p, w);
    EXPECT_NEAR(conductance_to_weight(p, g), w, 1e-12);
  }
}

TEST(Device, QuantizationSnapsToNearestLevel) {
  const DeviceParams p = params();
  // 0.4 is nearer to level 1 (1/3) than level 2 (2/3).
  const double g = quantize_weight_to_conductance(p, 0.4);
  EXPECT_NEAR(conductance_to_weight(p, g), 1.0 / 3.0, 1e-12);
}

TEST(Device, QuantizationClampsOutOfRange) {
  const DeviceParams p = params();
  EXPECT_DOUBLE_EQ(quantize_weight_to_conductance(p, 2.0), p.g_on_s);
  EXPECT_DOUBLE_EQ(quantize_weight_to_conductance(p, -1.0), p.g_off_s);
}

TEST(Device, CalibratedDriftKeepsMinOuFeasibleForMostOfHorizon) {
  // DESIGN.md §4: the 4x4 crossing should fall in the last ~half decade of
  // the horizon so Odin reprograms exactly once.
  const DeviceParams p = params();
  const double eta = 0.04;
  EXPECT_LT(relative_conductance_error(p, 3e7, 4, 4), eta);
  EXPECT_GT(relative_conductance_error(p, 1e8, 4, 4), eta);
}

}  // namespace
}  // namespace odin::reram
