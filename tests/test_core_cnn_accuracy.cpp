// CNN-based cross-check of the accuracy surrogate: the Monte-Carlo story
// (accuracy flat at within-budget error levels, monotone collapse beyond)
// must hold for convolutional reference models too, not just the MLP the
// MonteCarloAccuracy evaluator uses — the paper's workloads are CNNs.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/conv_layer.hpp"
#include "nn/sequential.hpp"

namespace odin::core {
namespace {

class CnnFixture : public ::testing::Test {
 protected:
  struct State {
    nn::Sequential cnn;
    nn::Dataset test;
    std::vector<nn::Matrix> pristine;
    double ideal;
  };

  static State& state() {
    static State s = [] {
      data::SyntheticDataset dataset(
          data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 31);
      const nn::Dataset train = dataset.as_feature_dataset(240, 2);
      common::Rng rng(5);
      State st;
      st.cnn.add(std::make_unique<nn::Conv2dLayer>(
          nn::ConvSpec{.in_channels = 3, .out_channels = 8, .kernel = 3,
                       .stride = 1, .padding = 1},
          16, 16, rng));
      st.cnn.add(std::make_unique<nn::Relu>());
      st.cnn.add(std::make_unique<nn::MaxPool2Layer>(8, 16, 16));
      st.cnn.add(std::make_unique<nn::Dense>(8 * 8 * 8, 10, rng));
      nn::TrainOptions opt;
      opt.epochs = 10;
      opt.batch_size = 16;
      opt.learning_rate = 2e-3;
      nn::fit_sequential(st.cnn, train, opt);

      const nn::Dataset all = dataset.as_feature_dataset(320, 2);
      st.test.inputs = nn::Matrix(80, all.inputs.cols());
      st.test.labels.assign(1, std::vector<int>(80));
      for (std::size_t i = 0; i < 80; ++i) {
        auto src = all.inputs.row(240 + i);
        std::copy(src.begin(), src.end(), st.test.inputs.row(i).begin());
        st.test.labels[0][i] = all.labels[0][240 + i];
      }
      for (nn::Parameter* p : st.cnn.parameters())
        st.pristine.push_back(p->value);
      st.ideal = st.cnn.accuracy(st.test);
      return st;
    }();
    return s;
  }

  /// Injects device-style errors (drift shrink + IR-scaled noise), measures
  /// accuracy, restores the weights.
  static double accuracy_under(double drift_nf, double ir_nf,
                               std::uint64_t seed) {
    State& st = state();
    common::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    auto params = st.cnn.parameters();
    for (nn::Parameter* p : params)
      for (double& v : p->value.flat())
        v = v * (1.0 - drift_nf) + 1.5 * ir_nf * std::abs(v) * rng.normal();
    const double acc = st.cnn.accuracy(st.test);
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i]->value = st.pristine[i];
    return acc;
  }
};

TEST_F(CnnFixture, CnnLearnsTheTask) { EXPECT_GT(state().ideal, 0.7); }

TEST_F(CnnFixture, WithinBudgetErrorsAreHarmless) {
  // The calibrated horizon's worst case: ~4% drift, ~1% IR.
  double acc = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) acc += accuracy_under(0.04, 0.01, s);
  EXPECT_GT(acc / 3.0, state().ideal - 0.08);
}

TEST_F(CnnFixture, SevereErrorsCollapseAccuracy) {
  double acc = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) acc += accuracy_under(0.6, 0.5, s);
  EXPECT_LT(acc / 3.0, state().ideal - 0.25);
}

TEST_F(CnnFixture, DecayIsMonotoneOnAverage) {
  auto mean_acc = [&](double d, double ir) {
    double acc = 0.0;
    for (std::uint64_t s = 1; s <= 4; ++s) acc += accuracy_under(d, ir, s);
    return acc / 4.0;
  };
  const double mild = mean_acc(0.1, 0.05);
  const double severe = mean_acc(0.6, 0.45);
  EXPECT_GT(mild, severe);
}

TEST_F(CnnFixture, RestorationIsExact) {
  const double before = state().cnn.accuracy(state().test);
  accuracy_under(0.5, 0.4, 9);
  EXPECT_DOUBLE_EQ(state().cnn.accuracy(state().test), before);
}

}  // namespace
}  // namespace odin::core
