// Tests for the table-based policy strawman.
#include <gtest/gtest.h>

#include "policy/table_policy.hpp"

namespace odin::policy {
namespace {

Features probe(double position, double sparsity) {
  Features f;
  f.layer_position = position;
  f.sparsity = sparsity;
  f.kernel = 3.0 / 7.0;
  f.log_time = 0.5;
  return f;
}

TEST(TablePolicy, EmptyFallsBackTo16x16) {
  TablePolicy table{ou::OuLevelGrid(128)};
  EXPECT_EQ(table.predict(probe(0.5, 0.5)), (ou::OuConfig{16, 16}));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.storage_bytes(), 0u);
}

TEST(TablePolicy, ExactMatchReturnsStoredAnswer) {
  TablePolicy table{ou::OuLevelGrid(128)};
  table.add(probe(0.1, 0.9), {4, 8});
  table.add(probe(0.9, 0.2), {64, 32});
  EXPECT_EQ(table.predict(probe(0.1, 0.9)), (ou::OuConfig{4, 8}));
  EXPECT_EQ(table.predict(probe(0.9, 0.2)), (ou::OuConfig{64, 32}));
}

TEST(TablePolicy, NearestNeighbourInterpolates) {
  TablePolicy table{ou::OuLevelGrid(128)};
  table.add(probe(0.0, 0.0), {64, 64});
  table.add(probe(1.0, 1.0), {4, 4});
  EXPECT_EQ(table.predict(probe(0.1, 0.1)), (ou::OuConfig{64, 64}));
  EXPECT_EQ(table.predict(probe(0.9, 0.9)), (ou::OuConfig{4, 4}));
}

TEST(TablePolicy, RingBufferOverwritesOldest) {
  TablePolicy table{ou::OuLevelGrid(128), 2};
  table.add(probe(0.0, 0.0), {4, 4});
  table.add(probe(1.0, 1.0), {8, 8});
  EXPECT_EQ(table.size(), 2u);
  // Third insert evicts the first entry.
  table.add(probe(0.0, 0.1), {32, 32});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.predict(probe(0.0, 0.0)), (ou::OuConfig{32, 32}));
}

TEST(TablePolicy, StorageGrowsLinearly) {
  TablePolicy table{ou::OuLevelGrid(128), 100};
  for (int i = 0; i < 60; ++i)
    table.add(probe(i / 60.0, 0.5), {16, 16});
  EXPECT_EQ(table.storage_bytes(), 60u * 5);
}

TEST(TablePolicy, DatasetRoundTrip) {
  const ou::OuLevelGrid grid(128);
  nn::Dataset data;
  data.inputs = nn::Matrix(2, 4);
  data.inputs(0, 0) = 0.2;
  data.inputs(1, 0) = 0.8;
  data.labels.assign(2, {0, 0});
  data.labels[0] = {1, 4};
  data.labels[1] = {2, 3};
  TablePolicy table{grid};
  table.add_dataset(data);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_DOUBLE_EQ(table.accuracy_on(data), 1.0);
}

}  // namespace
}  // namespace odin::policy
