// Tests for the im2col / conv2d forward path used by the crossbar-mapped
// inference demo and the Monte-Carlo reference networks.
#include <gtest/gtest.h>

#include "nn/conv.hpp"

namespace odin::nn {
namespace {

Image make_image(int c, int h, int w, double start = 0.0) {
  Image img{c, h, w, std::vector<double>(static_cast<std::size_t>(c) * h * w)};
  double v = start;
  for (double& x : img.data) x = v++;
  return img;
}

TEST(Im2Col, ShapeMatchesSpec) {
  const Image img = make_image(3, 8, 8);
  const ConvSpec spec{.in_channels = 3, .out_channels = 4, .kernel = 3,
                      .stride = 1, .padding = 1};
  const Matrix cols = im2col(img, spec);
  EXPECT_EQ(cols.rows(), 64u);          // 8*8 positions
  EXPECT_EQ(cols.cols(), 27u);          // 3*3*3 patch
  EXPECT_EQ(spec.out_dim(8), 8);
  EXPECT_EQ(spec.patch_size(), 27);
}

TEST(Im2Col, CenterPatchHasNoPaddingZeros) {
  const Image img = make_image(1, 4, 4, 1.0);  // values 1..16
  const ConvSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3,
                      .stride = 1, .padding = 1};
  const Matrix cols = im2col(img, spec);
  // Position (1,1) -> row 5; its receptive field is rows 0..2 x cols 0..2.
  const auto row = cols.row(5);
  const double expected[] = {1, 2, 3, 5, 6, 7, 9, 10, 11};
  for (int i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(i)], expected[i]);
}

TEST(Im2Col, CornerPatchIsZeroPadded) {
  const Image img = make_image(1, 4, 4, 1.0);
  const ConvSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3,
                      .stride = 1, .padding = 1};
  const Matrix cols = im2col(img, spec);
  // Position (0,0): top row and left column of the patch are padding.
  const auto row = cols.row(0);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[3], 0.0);
  EXPECT_DOUBLE_EQ(row[4], 1.0);  // image (0,0)
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  const Image img = make_image(1, 5, 5, 1.0);
  const ConvSpec spec{.in_channels = 1, .out_channels = 1, .kernel = 3,
                      .stride = 1, .padding = 1};
  Matrix w(9, 1);  // delta kernel: center tap = 1
  w(4, 0) = 1.0;
  const std::vector<double> bias{0.0};
  const Image out = conv2d(img, spec, w, bias);
  ASSERT_EQ(out.size(), img.size());
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x)
      EXPECT_DOUBLE_EQ(out.at(0, y, x), img.at(0, y, x));
}

TEST(Conv2d, StrideReducesSpatialDims) {
  const Image img = make_image(2, 8, 8);
  const ConvSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                      .stride = 2, .padding = 1};
  Matrix w(spec.patch_size(), 3);
  const std::vector<double> bias{0.5, 0.5, 0.5};
  const Image out = conv2d(img, spec, w, bias);
  EXPECT_EQ(out.channels, 3);
  EXPECT_EQ(out.height, 4);
  EXPECT_EQ(out.width, 4);
  // Zero weights -> bias everywhere.
  for (double v : out.data) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Maxpool2, PicksWindowMaximum) {
  Image img = make_image(1, 4, 4);
  const Image out = maxpool2(img);
  EXPECT_EQ(out.height, 2);
  EXPECT_EQ(out.width, 2);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), img.at(0, 1, 1));
  EXPECT_DOUBLE_EQ(out.at(0, 1, 1), img.at(0, 3, 3));
}

TEST(ReluInplace, ZeroesNegatives) {
  Image img{1, 1, 3, {-1.0, 0.0, 2.0}};
  relu_inplace(img);
  EXPECT_DOUBLE_EQ(img.data[0], 0.0);
  EXPECT_DOUBLE_EQ(img.data[2], 2.0);
}

TEST(GlobalAvgPool, AveragesPerChannel) {
  Image img{2, 2, 2, {1, 2, 3, 4, 10, 10, 10, 10}};
  const auto pooled = global_avg_pool(img);
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_DOUBLE_EQ(pooled[0], 2.5);
  EXPECT_DOUBLE_EQ(pooled[1], 10.0);
}

}  // namespace
}  // namespace odin::nn
