// Unit tests for the thread-pool parallel execution layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.hpp"

namespace odin::common {
namespace {

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  ThreadPool::instance().set_threads(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for_chunks(7, 3, 2,
                      [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  const auto out = parallel_transform(0, 1, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool::instance().set_threads(8);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 7, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, GrainLargerThanRangeRunsAsOneChunk) {
  ThreadPool::instance().set_threads(8);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> covered{0};
  parallel_for_chunks(3, 13, 100, [&](std::size_t b, std::size_t e) {
    chunks.fetch_add(1);
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 10u);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool::instance().set_threads(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  parallel_for_chunks(10, 107, 9, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    spans.emplace_back(b, e);
  });
  std::sort(spans.begin(), spans.end());
  std::size_t cursor = 10;
  for (const auto& [b, e] : spans) {
    EXPECT_EQ(b, cursor);
    EXPECT_GT(e, b);
    EXPECT_LE(e - b, 9u);
    cursor = e;
  }
  EXPECT_EQ(cursor, 107u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool::instance().set_threads(4);
  try {
    parallel_for(0, 1000, 1, [](std::size_t i) {
      if (i == 373) throw std::runtime_error("chunk failure");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failure");
  }
  // The pool stays usable after a failed region.
  std::atomic<int> calls{0};
  parallel_for(0, 64, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath) {
  ThreadPool::instance().set_threads(1);
  EXPECT_THROW(parallel_for(0, 8, 1,
                            [](std::size_t) {
                              throw std::logic_error("inline failure");
                            }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool::instance().set_threads(8);
  std::atomic<int> total{0};
  parallel_for(0, 16, 1, [&](std::size_t) {
    parallel_for(0, 64, 4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(ThreadPool, TransformPreservesIndexOrder) {
  ThreadPool::instance().set_threads(8);
  const auto out =
      parallel_transform(257, 3, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, OrderedReductionMatchesSequentialBitwise) {
  auto run = [](int threads) {
    ThreadPool::instance().set_threads(threads);
    const auto parts = parallel_transform(1000, 16, [](std::size_t i) {
      const double x = static_cast<double>(i);
      return std::sin(x) * 1e-3 + 1.0 / (x + 1.0);
    });
    double sum = 0.0;
    for (double p : parts) sum += p;
    return sum;
  };
  const double seq = run(1);
  const double par = run(8);
  EXPECT_EQ(seq, par);  // bitwise, not approximate
}

TEST(ThreadPool, SetThreadsReconfigures) {
  ThreadPool::instance().set_threads(3);
  EXPECT_EQ(ThreadPool::instance().threads(), 3);
  ThreadPool::instance().set_threads(1);
  EXPECT_EQ(ThreadPool::instance().threads(), 1);
  std::atomic<int> calls{0};
  parallel_for(0, 10, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

}  // namespace
}  // namespace odin::common
