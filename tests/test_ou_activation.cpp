// Tests for the activation-sparsity handling modes of the cost model.
#include <gtest/gtest.h>

#include "ou/cost_model.hpp"
#include "dnn/zoo.hpp"

namespace odin::ou {
namespace {

OuCounts counts_of(std::int64_t total, std::int64_t max_per_xbar) {
  OuCounts c;
  c.live_blocks = total;
  c.max_blocks_per_xbar = max_per_xbar;
  c.total_ou_cycles = total;
  c.max_ou_cycles_per_xbar = max_per_xbar;
  c.occupancy = 1.0;
  return c;
}

TEST(ActivationHandling, NoneIsIdentity) {
  CostParams p;  // default kNone
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(16, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(4, 0.5), 1.0);
}

TEST(ActivationHandling, RowSkipOnlyPaysOffForTinyOus) {
  CostParams p;
  p.activation_handling = ActivationHandling::kRowSkip;
  // All R inputs must be zero to skip: s^R collapses fast with R.
  EXPECT_NEAR(p.activation_cycle_factor(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(p.activation_cycle_factor(4, 0.5), 1.0 - 0.0625, 1e-12);
  EXPECT_NEAR(p.activation_cycle_factor(16, 0.5), 1.0, 1e-4);
  // Monotone in R.
  double prev = 0.0;
  for (int r : {1, 2, 4, 8, 16, 32}) {
    const double f = p.activation_cycle_factor(r, 0.5);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(ActivationHandling, CompactionScalesWithSparsityDirectly) {
  CostParams p;
  p.activation_handling = ActivationHandling::kCompaction;
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(16, 0.45), 0.55);
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(4, 0.45), 0.55);  // R-free
}

TEST(ActivationHandling, ClampsOutOfRangeSparsity) {
  CostParams p;
  p.activation_handling = ActivationHandling::kCompaction;
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(8, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.activation_cycle_factor(8, 1.5), 0.0);
}

TEST(ActivationHandling, CompactionReducesCostButPaysIndexEnergy) {
  const reram::DeviceParams dev;
  CostParams off;
  CostParams on;
  on.activation_handling = ActivationHandling::kCompaction;
  const OuCostModel base(off, dev);
  const OuCostModel compacting(on, dev);
  const auto counts = counts_of(1000, 100);
  const OuConfig cfg{16, 16};
  const auto cost_off = base.layer_cost(counts, cfg, 0.45);
  const auto cost_on = compacting.layer_cost(counts, cfg, 0.45);
  EXPECT_LT(cost_on.total().energy_j, cost_off.total().energy_j);
  EXPECT_LT(cost_on.total().latency_s, cost_off.total().latency_s);
  // The index-fetch surcharge exists: with zero sparsity, compaction is
  // strictly worse than doing nothing.
  const auto dense_on = compacting.layer_cost(counts, cfg, 0.0);
  const auto dense_off = base.layer_cost(counts, cfg, 0.0);
  EXPECT_GT(dense_on.total().energy_j, dense_off.total().energy_j);
}

TEST(ActivationHandling, ZooAssignsPlausibleActivationSparsities) {
  const auto model = dnn::make_resnet18(data::DatasetKind::kCifar10);
  EXPECT_DOUBLE_EQ(model.layers.front().activation_sparsity, 0.0);
  for (std::size_t j = 1; j < model.layers.size(); ++j) {
    const auto& l = model.layers[j];
    EXPECT_GT(l.activation_sparsity, 0.0) << l.name;
    EXPECT_LT(l.activation_sparsity, 0.7) << l.name;
  }
}

}  // namespace
}  // namespace odin::ou
