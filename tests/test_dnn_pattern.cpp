// Tests for WeightPattern, including a randomized property check of the
// word-level block queries against a naive reference.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dnn/pattern.hpp"

namespace odin::dnn {
namespace {

TEST(WeightPattern, SetTestClearAndCount) {
  WeightPattern p(4, 4);
  EXPECT_EQ(p.nonzeros(), 0);
  p.set(1, 2);
  EXPECT_TRUE(p.test(1, 2));
  EXPECT_FALSE(p.test(2, 1));
  EXPECT_EQ(p.nonzeros(), 1);
  p.set(1, 2);  // idempotent
  EXPECT_EQ(p.nonzeros(), 1);
  p.clear(1, 2);
  EXPECT_FALSE(p.test(1, 2));
  EXPECT_EQ(p.nonzeros(), 0);
  p.clear(1, 2);  // idempotent
  EXPECT_EQ(p.nonzeros(), 0);
}

TEST(WeightPattern, SparsityFraction) {
  WeightPattern p(2, 5);
  p.set(0, 0);
  p.set(1, 4);
  EXPECT_DOUBLE_EQ(p.sparsity(), 1.0 - 2.0 / 10.0);
}

TEST(WeightPattern, BlockLiveBasics) {
  WeightPattern p(8, 8);
  p.set(3, 5);
  EXPECT_TRUE(p.block_live(0, 0, 8, 8));
  EXPECT_TRUE(p.block_live(3, 5, 1, 1));
  EXPECT_TRUE(p.block_live(2, 4, 2, 2));
  EXPECT_FALSE(p.block_live(0, 0, 3, 5));
  EXPECT_FALSE(p.block_live(4, 6, 4, 2));
}

TEST(WeightPattern, BlockClipsAtMatrixEdge) {
  WeightPattern p(5, 5);
  p.set(4, 4);
  // Block extends past the edge; clipped rectangle still finds the bit.
  EXPECT_TRUE(p.block_live(4, 4, 16, 16));
  EXPECT_EQ(p.block_nonzeros(4, 4, 16, 16), 1);
  // Fully out of range.
  EXPECT_FALSE(p.block_live(5, 5, 4, 4));
  EXPECT_EQ(p.block_nonzeros(5, 5, 4, 4), 0);
}

TEST(WeightPattern, CrossesWordBoundaries) {
  WeightPattern p(2, 200);
  p.set(0, 63);
  p.set(0, 64);
  p.set(1, 127);
  p.set(1, 128);
  EXPECT_EQ(p.block_nonzeros(0, 60, 1, 8), 2);   // spans words 0/1
  EXPECT_EQ(p.block_nonzeros(1, 120, 1, 16), 2); // spans words 1/2
  EXPECT_TRUE(p.block_live(0, 63, 1, 1));
  EXPECT_TRUE(p.block_live(0, 64, 1, 1));
  EXPECT_FALSE(p.block_live(0, 65, 1, 62));
}

TEST(WeightPattern, RandomizedBlockQueriesMatchNaiveReference) {
  common::Rng rng(1234);
  const int rows = 37, cols = 131;  // deliberately non-aligned dims
  WeightPattern p(rows, cols);
  std::vector<std::vector<bool>> ref(rows, std::vector<bool>(cols, false));
  for (int i = 0; i < 400; ++i) {
    const int r = static_cast<int>(rng.uniform_index(rows));
    const int c = static_cast<int>(rng.uniform_index(cols));
    p.set(r, c);
    ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = true;
  }
  std::int64_t expected_nonzeros = 0;
  for (const auto& row : ref)
    for (bool b : row) expected_nonzeros += b ? 1 : 0;
  EXPECT_EQ(p.nonzeros(), expected_nonzeros);

  for (int trial = 0; trial < 500; ++trial) {
    const int r0 = static_cast<int>(rng.uniform_index(rows));
    const int c0 = static_cast<int>(rng.uniform_index(cols));
    const int h = 1 + static_cast<int>(rng.uniform_index(20));
    const int w = 1 + static_cast<int>(rng.uniform_index(80));
    std::int64_t naive = 0;
    for (int r = r0; r < std::min(r0 + h, rows); ++r)
      for (int c = c0; c < std::min(c0 + w, cols); ++c)
        naive += ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] ? 1 : 0;
    EXPECT_EQ(p.block_nonzeros(r0, c0, h, w), naive)
        << "rect " << r0 << "," << c0 << " " << h << "x" << w;
    EXPECT_EQ(p.block_live(r0, c0, h, w), naive > 0);
  }
}

}  // namespace
}  // namespace odin::dnn
