// Tests for the multi-tenant serving simulator.
#include <gtest/gtest.h>

#include "core/serving.hpp"
#include "test_helpers.hpp"

namespace odin::core {
namespace {

struct Fixture {
  ou::MappedModel tenant_a = testing::tiny_mapped(128, 21);
  ou::MappedModel tenant_b = testing::tiny_mapped(128, 22);
  ou::MappedModel tenant_c = testing::tiny_mapped(128, 23);
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  std::vector<const ou::MappedModel*> tenants() const {
    return {&tenant_a, &tenant_b, &tenant_c};
  }
  ServingConfig config() const {
    ServingConfig cfg;
    cfg.horizon = HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                .runs = 120};
    cfg.segments = 6;
    return cfg;
  }
};

TEST(Serving, EveryTenantGetsServedAndRunsAddUp) {
  Fixture fx;
  const auto result = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)), fx.config());
  EXPECT_EQ(result.switches, 6);
  EXPECT_EQ(result.total_runs(), 120);
  ASSERT_EQ(result.tenants.size(), 3u);
  for (const TenantStats& t : result.tenants) {
    EXPECT_EQ(t.runs, 40);  // 2 segments x 20 runs each
    EXPECT_GT(t.inference.energy_j, 0.0);
  }
}

TEST(Serving, SwitchProgrammingIsCharged) {
  Fixture fx;
  const auto result = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)), fx.config());
  EXPECT_GT(result.programming.energy_j, 0.0);
  // Six switches, each a full tenant programming.
  common::EnergyLatency one;
  for (std::size_t j = 0; j < fx.tenant_a.layer_count(); ++j)
    one += fx.cost.reprogram_cost(fx.tenant_a.mapping(j));
  EXPECT_NEAR(result.programming.energy_j, 6.0 * one.energy_j,
              2.0 * one.energy_j);  // tenants differ slightly in nonzeros
}

TEST(Serving, SegmentSwitchResetsDriftSoNoSpuriousReprograms) {
  // Segments start with freshly programmed arrays; drift-triggered
  // reprogramming inside a ~1-decade segment of a 120-run horizon should
  // be rare (the 4x4 crossing is ~6e7 s after programming).
  Fixture fx;
  const auto result = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)), fx.config());
  int reprograms = 0;
  for (const TenantStats& t : result.tenants) reprograms += t.reprograms;
  EXPECT_LE(reprograms, 1);
}

TEST(Serving, PolicyLearningCarriesAcrossTenants) {
  Fixture fx;
  ServingConfig cfg = fx.config();
  cfg.odin.buffer_capacity = 12;
  cfg.odin.update_options.epochs = 60;
  const auto result = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  EXPECT_GE(result.policy_updates, 1);
  // A tenant's second visit should mismatch less than its first: the
  // policy arrives warm. Compare the first tenant's two segments via the
  // total (first segment dominated by the untrained policy).
  const auto frozen = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)),
      [&] {
        ServingConfig c = cfg;
        c.odin.buffer_capacity = 1'000'000;  // never updates
        return c;
      }());
  EXPECT_LT(result.total_mismatches(), frozen.total_mismatches());
}

TEST(Serving, OdinBeatsHomogeneousAcrossTenants) {
  Fixture fx;
  const auto odin = serve_with_odin(
      fx.tenants(), fx.nonideal, fx.cost,
      policy::OuPolicy(ou::OuLevelGrid(128)), fx.config());
  const auto base = serve_with_homogeneous(fx.tenants(), fx.nonideal,
                                           fx.cost, {16, 16}, fx.config());
  EXPECT_EQ(base.total_runs(), odin.total_runs());
  // Same programming burden (same tenants); Odin wins on the rest.
  EXPECT_NEAR(base.programming.energy_j, odin.programming.energy_j, 1e-12);
  EXPECT_LT(odin.total_edp(), base.total_edp() * 1.05);
}

TEST(Serving, HomogeneousLabelsAndStructure) {
  Fixture fx;
  const auto base = serve_with_homogeneous(fx.tenants(), fx.nonideal,
                                           fx.cost, {9, 8}, fx.config());
  EXPECT_EQ(base.label, "9x8");
  EXPECT_EQ(base.switches, 6);
  EXPECT_EQ(base.policy_updates, 0);
}

}  // namespace
}  // namespace odin::core
