// Tests for batched, inter-layer-pipelined inference cost.
#include <gtest/gtest.h>

#include "arch/batching.hpp"
#include "test_helpers.hpp"

namespace odin::arch {
namespace {

struct Fixture {
  ou::MappedModel model = testing::tiny_mapped();
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
};

TEST(Batching, BatchOfOneEqualsFillLatency) {
  Fixture fx;
  const auto b1 = batched_inference_cost(fx.model, {16, 16}, fx.cost, 1);
  EXPECT_DOUBLE_EQ(b1.total.latency_s, b1.fill_latency_s);
  EXPECT_GT(b1.bottleneck_latency_s, 0.0);
  EXPECT_LE(b1.bottleneck_latency_s, b1.fill_latency_s);
}

TEST(Batching, LatencyFollowsPipelineFormula) {
  Fixture fx;
  const auto b1 = batched_inference_cost(fx.model, {16, 16}, fx.cost, 1);
  const auto b8 = batched_inference_cost(fx.model, {16, 16}, fx.cost, 8);
  EXPECT_NEAR(b8.total.latency_s,
              b1.fill_latency_s + 7.0 * b1.bottleneck_latency_s, 1e-12);
  // Energy is exactly linear in the batch.
  EXPECT_NEAR(b8.total.energy_j, 8.0 * b1.total.energy_j, 1e-18);
}

TEST(Batching, PipeliningBeatsSequentialExecution) {
  Fixture fx;
  const auto b16 = batched_inference_cost(fx.model, {16, 16}, fx.cost, 16);
  const auto b1 = batched_inference_cost(fx.model, {16, 16}, fx.cost, 1);
  EXPECT_LT(b16.total.latency_s, 16.0 * b1.total.latency_s);
}

TEST(Batching, ThroughputIsInverseBottleneck) {
  Fixture fx;
  const auto b = batched_inference_cost(fx.model, {16, 16}, fx.cost, 4);
  EXPECT_NEAR(b.throughput_ips * b.bottleneck_latency_s, 1.0, 1e-12);
  EXPECT_GE(b.bottleneck_layer, 0);
  EXPECT_LT(b.bottleneck_layer, static_cast<int>(fx.model.layer_count()));
}

TEST(Batching, PerLayerConfigsCanMoveTheBottleneck) {
  Fixture fx;
  // Uniform fine OUs: the biggest layer dominates. Giving that layer a
  // coarse OU while keeping the rest fine must not increase throughput's
  // bottleneck above the uniform-fine value.
  const auto fine = batched_inference_cost(fx.model, {4, 4}, fx.cost, 4);
  std::vector<ou::OuConfig> mixed(fx.model.layer_count(), ou::OuConfig{4, 4});
  mixed[static_cast<std::size_t>(fine.bottleneck_layer)] = {32, 32};
  const auto rebalanced =
      batched_inference_cost(fx.model, mixed, fx.cost, 4);
  EXPECT_LT(rebalanced.bottleneck_latency_s, fine.bottleneck_latency_s);
  EXPECT_GT(rebalanced.throughput_ips, fine.throughput_ips);
}

}  // namespace
}  // namespace odin::arch
