// Tests for the exhaustive and resource-bounded searches: optimality,
// feasibility handling and the evaluation-count gap the paper reports.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ou/mapped_model.hpp"
#include "ou/search.hpp"

namespace odin::ou {
namespace {

struct Fixture {
  dnn::LayerDescriptor layer;
  dnn::WeightPattern pattern;
  OuLevelGrid grid{128};
  NonIdealityModel nonideal{reram::DeviceParams{}, NonIdealityParams{}};
  OuCostModel cost{CostParams{}, reram::DeviceParams{}};
  LayerMapping mapping;

  explicit Fixture(double density = 0.4, std::uint64_t seed = 5)
      : layer(make_layer()), pattern(make_pattern(density, seed)),
        mapping(layer, pattern, 128) {}

  static dnn::LayerDescriptor make_layer() {
    dnn::LayerDescriptor l;
    l.name = "mid";
    l.fan_in = 256;
    l.outputs = 192;
    l.spatial_positions = 16;
    l.kernel = 3;
    return l;
  }
  dnn::WeightPattern make_pattern(double density, std::uint64_t seed) {
    common::Rng rng(seed);
    dnn::WeightPattern p(layer.fan_in, layer.outputs);
    for (int r = 0; r < layer.fan_in; ++r)
      for (int c = 0; c < layer.outputs; ++c)
        if (rng.bernoulli(density)) p.set(r, c);
    return p;
  }
  LayerContext context(double t, double sensitivity = 1.0) const {
    return LayerContext{.mapping = &mapping, .cost = &cost,
                        .nonideal = &nonideal, .grid = &grid,
                        .elapsed_s = t, .sensitivity = sensitivity};
  }
};

TEST(ExhaustiveSearch, FindsGlobalFeasibleMinimum) {
  const Fixture fx;
  const auto ctx = fx.context(1.0);
  const SearchResult result = exhaustive_search(ctx);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.evaluations, 36);
  // Brute-force verification.
  for (const OuConfig& cfg : fx.grid.all_configs()) {
    if (ctx.feasible(cfg))
      EXPECT_LE(result.edp, ctx.edp(cfg) * (1.0 + 1e-12)) << cfg.to_string();
  }
  EXPECT_TRUE(ctx.feasible(result.best));
  EXPECT_DOUBLE_EQ(result.edp, ctx.edp(result.best));
}

TEST(ExhaustiveSearch, ReportsInfeasibleWhenEverythingViolates) {
  const Fixture fx;
  const auto ctx = fx.context(1e10);  // far beyond the drift horizon
  const SearchResult result = exhaustive_search(ctx);
  EXPECT_FALSE(result.found);
}

TEST(ResourceBoundedSearch, FindsFeasibleFromAnyStart) {
  const Fixture fx;
  for (double t : {1.0, 1e3, 1e6, 3e7}) {
    const auto ctx = fx.context(t);
    for (const OuConfig& start : fx.grid.all_configs()) {
      const SearchResult result = resource_bounded_search(ctx, start, 3);
      EXPECT_TRUE(result.found) << "t=" << t << " start=" << start.to_string();
      EXPECT_TRUE(ctx.feasible(result.best));
    }
  }
}

TEST(ResourceBoundedSearch, MatchesExhaustiveWhenStartedNearOptimum) {
  const Fixture fx;
  const auto ctx = fx.context(1.0);
  const SearchResult ex = exhaustive_search(ctx);
  const SearchResult rb = resource_bounded_search(ctx, ex.best, 3);
  ASSERT_TRUE(rb.found);
  EXPECT_EQ(rb.best, ex.best);
  EXPECT_DOUBLE_EQ(rb.edp, ex.edp);
}

TEST(ResourceBoundedSearch, NeverBeatsExhaustive) {
  const Fixture fx;
  for (double t : {1.0, 1e4, 1e7}) {
    const auto ctx = fx.context(t);
    const SearchResult ex = exhaustive_search(ctx);
    const SearchResult rb =
        resource_bounded_search(ctx, {16, 16}, 3);
    ASSERT_TRUE(ex.found);
    ASSERT_TRUE(rb.found);
    EXPECT_GE(rb.edp, ex.edp * (1.0 - 1e-12));
  }
}

TEST(ResourceBoundedSearch, CostsRoughlyAThirdOfExhaustive) {
  // Paper Sec. V-B: EX has ~3x the timing overhead of RB (K = 3).
  const Fixture fx;
  const auto ctx = fx.context(1.0);
  const SearchResult ex = exhaustive_search(ctx);
  const SearchResult rb = resource_bounded_search(ctx, {16, 16}, 3);
  EXPECT_LE(rb.evaluations, 16);  // 1 + 3 steps x <=4 neighbours + slack
  EXPECT_GE(static_cast<double>(ex.evaluations) / rb.evaluations, 2.0);
}

TEST(ResourceBoundedSearch, SnapsOffGridStartToGrid) {
  const Fixture fx;
  const auto ctx = fx.context(1.0);
  // 9x8 (a homogeneous baseline) is off the 2^L grid.
  const SearchResult result = resource_bounded_search(ctx, {9, 8}, 3);
  ASSERT_TRUE(result.found);
  EXPECT_GE(fx.grid.level_of(result.best.rows), 0);
  EXPECT_GE(fx.grid.level_of(result.best.cols), 0);
}

TEST(ResourceBoundedSearch, ZeroStepsEvaluatesOnlyStart) {
  const Fixture fx;
  const auto ctx = fx.context(1.0);
  const SearchResult result = resource_bounded_search(ctx, {16, 16}, 0);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best, (OuConfig{16, 16}));
  EXPECT_EQ(result.evaluations, 1);
}

TEST(ResourceBoundedSearch, HonoursSensitivityConstraint) {
  const Fixture fx;
  const auto ctx = fx.context(1.0, 3.0);  // early-layer sensitivity
  const SearchResult result = resource_bounded_search(ctx, {64, 64}, 3);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(ctx.feasible(result.best));
  EXPECT_LE(result.best.sum(), 24);  // eta_ir / (s * G_ON * R_wire)
}

TEST(LayerContext, ViolationIsZeroIffFeasible) {
  const Fixture fx;
  const auto ctx = fx.context(1.0, 2.0);
  for (const OuConfig& cfg : fx.grid.all_configs()) {
    if (ctx.feasible(cfg))
      EXPECT_DOUBLE_EQ(ctx.violation(cfg), 0.0) << cfg.to_string();
    else
      EXPECT_GT(ctx.violation(cfg), 0.0) << cfg.to_string();
  }
}

TEST(Searches, LateHorizonPushesBestTowardsFinerOus) {
  const Fixture fx;
  const SearchResult early = exhaustive_search(fx.context(1.0));
  const SearchResult late = exhaustive_search(fx.context(5e7));
  ASSERT_TRUE(early.found);
  ASSERT_TRUE(late.found);
  EXPECT_LT(late.best.sum(), early.best.sum());  // Fig. 4's left shift
}

}  // namespace
}  // namespace odin::ou
