#!/usr/bin/env bash
# Benchmark harness.
#
# Configures and builds a Release tree (debug-build timings are
# meaningless for the kernel comparisons), runs the google-benchmark
# microbenches (micro_mvm, micro_search_overhead) plus the two macro arms
# (fig8_edp_all_dnns, batching_throughput) under ODIN_THREADS=1 and
# ODIN_THREADS=<N>, and merges everything into BENCH_parallel.json at the
# repo root with per-mode wall clocks and the resulting speedups. The
# single-thread micro_mvm run is additionally paired old-kernel-vs-new
# (the BM_*Reference twins time the pinned per-cell kernel) into
# BENCH_mvm_kernel.json. Also runs the fault-injection campaign arm
# (fault_campaign), which writes BENCH_faults.json directly, and the
# robustness arm (robustness_overhead: checkpoint write/restore latency,
# guard shadow-eval overhead, drift-burst rollback behaviour), which
# writes BENCH_robustness.json, and the resilience arm
# (serving_resilience: overload/shed-policy sweep plus the deadline-vs-
# unbounded storm comparison), which writes BENCH_serving_resilience.json.
# The batching arm (batching_throughput under ODIN_THREADS=1: batch x OU
# kernel sweep old-vs-new, the pipelined model table, and the serving
# batch-formation comparison) writes BENCH_batching.json directly.
# The endurance arm (endurance_projection: leveled-vs-unleveled lifetime
# projection per scheme, spare-pool sweep, and the equal-EDP check that
# leveling is free at serving time) writes BENCH_endurance.json.
# The fleet arm (fleet_throughput: shard-count sweep over the 36-PE mesh
# with NoC-aware placement vs the round-robin baseline) writes
# BENCH_fleet.json.
# The campaign arm (fleet_campaign: the trace-driven million-request
# scenario with fault storms, churn and autoscaling — replay determinism,
# mid-storm crash/resume, autoscaled-vs-static flash-phase slack) writes
# BENCH_fleet_campaign.json; set ODIN_CAMPAIGN_SMOKE=1 for the small
# smoke-scale variant (30k requests / 120 tenants instead of 1.2M / 1200).
# The cluster arm (cluster_failover: three meshes with a pinned mesh-loss
# window opening mid-storm — failover-on vs failover-off victim recovery,
# bounded RTO/RPO, replay determinism, and mid-failover crash/resume)
# writes BENCH_cluster.json; it honours ODIN_CAMPAIGN_SMOKE=1 too and
# exits nonzero on a recovery or determinism regression.
# Every emitted JSON records the build type and git revision it was
# measured from.
#
# Usage: tools/run_bench.sh [build-dir] [threads]
#   build-dir  defaults to <repo>/build-release (configured Release here)
#   threads    defaults to nproc (the "parallel" arm; 1 is always run too)
#   ODIN_CAMPAIGN_SMOKE=1 runs the campaign arm at smoke scale
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build-release}"
THREADS="${2:-$(nproc)}"
OUT="$REPO/BENCH_parallel.json"
KERNEL_OUT="$REPO/BENCH_mvm_kernel.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "[bench] configuring Release build in $BUILD" >&2
cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release >"$TMP/cmake.log"
cmake --build "$BUILD" -j --target \
    micro_mvm micro_search_overhead fig8_edp_all_dnns \
    batching_throughput fault_campaign robustness_overhead \
    serving_resilience endurance_projection fleet_throughput \
    fleet_campaign cluster_failover \
    >"$TMP/build.log"

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
GIT_SHA="$(git -C "$REPO" rev-parse --short HEAD 2>/dev/null || echo unknown)"

run_micro() {  # $1 = binary name, $2 = ODIN_THREADS
  echo "[bench] $1 (ODIN_THREADS=$2)" >&2
  ODIN_THREADS="$2" "$BUILD/bench/$1" \
    --benchmark_out="$TMP/$1_t$2.json" \
    --benchmark_out_format=json --benchmark_format=console >/dev/null
}

wall_clock() {  # $1 = binary name, $2 = ODIN_THREADS; prints seconds
  echo "[bench] $1 (ODIN_THREADS=$2, wall clock)" >&2
  local t0 t1
  t0=$(date +%s.%N)
  ODIN_THREADS="$2" "$BUILD/bench/$1" >"$TMP/$1_t$2.log"
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}

for t in 1 "$THREADS"; do
  run_micro micro_mvm "$t"
  run_micro micro_search_overhead "$t"
done

echo "[bench] fault_campaign -> BENCH_faults.json" >&2
"$BUILD/bench/fault_campaign" --json "$REPO/BENCH_faults.json" \
  >"$TMP/fault_campaign.log"

echo "[bench] robustness_overhead -> BENCH_robustness.json" >&2
"$BUILD/bench/robustness_overhead" --json "$REPO/BENCH_robustness.json" \
  >"$TMP/robustness_overhead.log"

echo "[bench] serving_resilience -> BENCH_serving_resilience.json" >&2
"$BUILD/bench/serving_resilience" --json "$REPO/BENCH_serving_resilience.json" \
  >"$TMP/serving_resilience.log"

echo "[bench] endurance_projection -> BENCH_endurance.json" >&2
"$BUILD/bench/endurance_projection" --json "$REPO/BENCH_endurance.json" \
  >"$TMP/endurance_projection.log"

echo "[bench] fleet_throughput -> BENCH_fleet.json" >&2
"$BUILD/bench/fleet_throughput" --json "$REPO/BENCH_fleet.json" \
  --build-type "$BUILD_TYPE" --git-sha "$GIT_SHA" \
  >"$TMP/fleet_throughput.log"

# The campaign arm exits nonzero if replay or crash/resume is not
# byte-identical, so a determinism regression fails the whole harness.
CAMPAIGN_FLAGS=()
if [[ "${ODIN_CAMPAIGN_SMOKE:-0}" != 0 ]]; then
  CAMPAIGN_FLAGS+=(--smoke)
fi
echo "[bench] fleet_campaign${CAMPAIGN_FLAGS[0]:+ (smoke)}" \
  "-> BENCH_fleet_campaign.json" >&2
"$BUILD/bench/fleet_campaign" --json "$REPO/BENCH_fleet_campaign.json" \
  --build-type "$BUILD_TYPE" --git-sha "$GIT_SHA" \
  ${CAMPAIGN_FLAGS[@]+"${CAMPAIGN_FLAGS[@]}"} \
  >"$TMP/fleet_campaign.log"

# The cluster arm likewise exits nonzero if the failover path misses the
# 95% victim-recovery bar or any replay/resume stops being byte-identical.
echo "[bench] cluster_failover${CAMPAIGN_FLAGS[0]:+ (smoke)}" \
  "-> BENCH_cluster.json" >&2
"$BUILD/bench/cluster_failover" --json "$REPO/BENCH_cluster.json" \
  --build-type "$BUILD_TYPE" --git-sha "$GIT_SHA" \
  ${CAMPAIGN_FLAGS[@]+"${CAMPAIGN_FLAGS[@]}"} \
  >"$TMP/cluster_failover.log"

# Single-thread so the kernel sweep isolates the batching/SIMD win from
# thread-pool scaling (which BENCH_parallel.json already covers).
echo "[bench] batching_throughput -> BENCH_batching.json" >&2
ODIN_THREADS=1 "$BUILD/bench/batching_throughput" \
  --json "$REPO/BENCH_batching.json" \
  --build-type "$BUILD_TYPE" --git-sha "$GIT_SHA" \
  >"$TMP/batching_throughput.log"

FIG8_SEQ=$(wall_clock fig8_edp_all_dnns 1)
FIG8_PAR=$(wall_clock fig8_edp_all_dnns "$THREADS")
BATCH_SEQ=$(wall_clock batching_throughput 1)
BATCH_PAR=$(wall_clock batching_throughput "$THREADS")

python3 - "$OUT" "$KERNEL_OUT" "$THREADS" "$TMP" "$BUILD_TYPE" "$GIT_SHA" \
    "$FIG8_SEQ" "$FIG8_PAR" "$BATCH_SEQ" "$BATCH_PAR" <<'PY'
import json, os, sys

out, kernel_out = sys.argv[1], sys.argv[2]
threads, tmp = int(sys.argv[3]), sys.argv[4]
build_type, git_sha = sys.argv[5], sys.argv[6]
fig8_seq, fig8_par, batch_seq, batch_par = map(float, sys.argv[7:11])

def load(name, t):
    with open(os.path.join(tmp, f"{name}_t{t}.json")) as f:
        return json.load(f)

def benchmarks(doc):
    return {
        b["name"]: {"real_time": b["real_time"], "cpu_time": b["cpu_time"],
                    "time_unit": b["time_unit"]}
        for b in doc["benchmarks"]
    }

report = {
    "build_type": build_type,
    "git_sha": git_sha,
    "threads": threads,
    "host_cpus": os.cpu_count(),
    "micro": {},
    "macro_wall_clock_s": {
        "fig8_edp_all_dnns": {
            "threads_1": fig8_seq, "threads_n": fig8_par,
            "speedup": fig8_seq / fig8_par if fig8_par > 0 else None,
        },
        "batching_throughput": {
            "threads_1": batch_seq, "threads_n": batch_par,
            "speedup": batch_seq / batch_par if batch_par > 0 else None,
        },
    },
}
for name in ("micro_mvm", "micro_search_overhead"):
    seq, par = benchmarks(load(name, 1)), benchmarks(load(name, threads))
    report["micro"][name] = {
        "context": load(name, threads)["context"],
        "threads_1": seq,
        "threads_n": par,
        "speedup": {
            k: (seq[k]["real_time"] / par[k]["real_time"]
                if k in seq and par[k]["real_time"] > 0 else None)
            for k in par
        },
    }

with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"[bench] wrote {out}")

# Old-vs-new kernel table: every BM_<x>Reference/<args> run pairs with the
# plane-based BM_<x>/<args> from the same single-thread binary run.
single = benchmarks(load("micro_mvm", 1))
pairs = {}
for name, ref in single.items():
    base, slash, args = name.partition("/")
    if not base.endswith("Reference"):
        continue
    new_name = base[: -len("Reference")] + slash + args
    new = single.get(new_name)
    if new is None:
        continue
    pairs[new_name] = {
        "time_unit": new["time_unit"],
        "old_real_time": ref["real_time"],
        "new_real_time": new["real_time"],
        "speedup": (ref["real_time"] / new["real_time"]
                    if new["real_time"] > 0 else None),
    }

kernel_report = {
    "build_type": build_type,
    "git_sha": git_sha,
    "threads": 1,
    "note": "old = pinned per-cell reference kernel, new = precomputed "
            "effective-weight planes; single-thread (ODIN_THREADS=1)",
    "kernels": pairs,
}
with open(kernel_out, "w") as f:
    json.dump(kernel_report, f, indent=2)
    f.write("\n")
print(f"[bench] wrote {kernel_out}")
for name, row in sorted(pairs.items()):
    print(f"[bench]   {name}: {row['old_real_time']:.1f} -> "
          f"{row['new_real_time']:.1f} {row['time_unit']} "
          f"({row['speedup']:.2f}x)")
PY
