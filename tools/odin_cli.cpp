// odin_cli — command-line driver for the Odin library.
//
//   odin_cli workloads
//       List the paper's nine workloads (plus extensions) with their
//       lowered sizes, sparsity and crossbar footprints.
//   odin_cli simulate  <workload> [--crossbar N] [--runs N] [--ou RxC]
//       Horizon simulation of Odin vs a homogeneous baseline on one
//       workload; prints totals and the EDP advantage.
//   odin_cli train-policy <output-file> [--exclude FAMILY] [--crossbar N]
//       Offline-bootstrap a policy (leave-one-family-out) and save it.
//   odin_cli best-ou <workload> [--layer J] [--time T]
//       Exhaustive best OU configuration per layer at a given drift time.
//   odin_cli checkpoint <base> [--workload W] [--runs N] [--segments K]
//                              [--every N] [--max-runs N] [--crossbar N]
//       Serve with periodic crash-safe checkpoints to <base>.a/<base>.b;
//       --max-runs simulates a crash after N inference runs.
//   odin_cli resume <base> [--workload W] [--runs N] [--segments K]
//                          [--crossbar N]
//       Load the newest valid checkpoint of the pair and finish the
//       interrupted serving horizon (flags must match the original).
//   odin_cli serve [--workloads A,B,C] [--runs N] [--segments K]
//                  [--crossbar N] [--slo S] [--queue N]
//                  [--shed block|oldest|newest] [--eval-cost S]
//                  [--breaker-window N] [--breaker-threshold N]
//                  [--watchdog-ms N] [--batch-max N]
//       Multi-tenant serving with the resilience layer on: per-tenant
//       latency SLOs, bounded admission queue with load shedding,
//       circuit breakers and the hung-work watchdog. Reports deadline
//       slack percentiles, shed/miss counts and breaker transitions.
//       --batch-max enables deadline-aware batch formation over the
//       admission queue with the given cap (0 = the ODIN_BATCH_MAX
//       environment default); the summary then also reports batches
//       formed, mean occupancy and SLO-capped growth.
//       --wear SEED serves against a wear-leveled fault injector (spare
//       pool sized by ODIN_SPARE_ROWS, retirement threshold by
//       ODIN_WEAR_BUDGET) and reports per-tenant wear counters: rows
//       remapped onto spares, crossbars retired (tenant migrated),
//       leveled row writes, wear-deferred reprograms and the spare rows
//       still unused.
//       --shards N partitions the 36-PE mesh into N shards and serves
//       them concurrently: tenants are placed NoC-/wear-aware
//       (core/fleet.hpp), each shard runs its own serving loop, and the
//       report adds a per-shard table plus fleet aggregates (makespan,
//       images/s, per-request EDP, pooled p99 slack). 0 defers to the
//       ODIN_SHARDS environment default (1). With --wear, each shard
//       gets its own injector seeded SEED+k so placement can steer
//       tenants off worn shards.
//   odin_cli campaign [--file SCENARIO] [--seed N] [--tenants N]
//                     [--requests N] [--shards N] [--epochs N]
//                     [--autoscale on|off] [--checkpoint BASE] [--every N]
//                     [--max-requests N] [--resume]
//       Seeded, replayable workload-trace campaign (core/scenario.hpp):
//       diurnal arrivals, flash crowds, tenant churn, correlated fault
//       storms and reactive autoscaling over the sharded mesh. --file
//       reads a scenario file (docs/scenario_format.md); flags override
//       it. --max-requests simulates a crash mid-campaign; --resume
//       reinstates the newest checkpoint of the pair and finishes the
//       campaign bitwise-identical to an uninterrupted run.
//
// All randomness is seeded; outputs are reproducible.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/scenario.hpp"
#include "core/serving.hpp"
#include "ou/search.hpp"
#include "policy/serialization.hpp"
#include "reram/fault_injection.hpp"

using namespace odin;

namespace {

std::map<std::string, dnn::DnnModel (*)(data::DatasetKind)> builders() {
  return {
      {"resnet18", dnn::make_resnet18},   {"resnet34", dnn::make_resnet34},
      {"resnet50", dnn::make_resnet50},   {"vgg11", dnn::make_vgg11},
      {"vgg16", dnn::make_vgg16},         {"vgg19", dnn::make_vgg19},
      {"googlenet", dnn::make_googlenet},
      {"densenet121", dnn::make_densenet121},
      {"vit", dnn::make_vit},             {"mobilenetv1", dnn::make_mobilenetv1},
  };
}

std::optional<std::string> flag_value(int argc, char** argv,
                                      const char* name) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::string(argv[i + 1]);
  return std::nullopt;
}

std::optional<dnn::DnnModel> build_workload(const std::string& name) {
  const auto reg = builders();
  const auto it = reg.find(name);
  if (it == reg.end()) return std::nullopt;
  // CLI workloads default to CIFAR-10 shapes.
  return it->second(data::DatasetKind::kCifar10);
}

std::optional<ou::OuConfig> parse_ou(const std::string& text) {
  const auto x = text.find('x');
  if (x == std::string::npos) return std::nullopt;
  const int r = std::atoi(text.substr(0, x).c_str());
  const int c = std::atoi(text.substr(x + 1).c_str());
  if (r < 1 || c < 1) return std::nullopt;
  return ou::OuConfig{r, c};
}

int cmd_workloads() {
  const core::Setup setup;
  const arch::SystemModel system = setup.make_system();
  common::Table table({"workload", "layers", "lowered weights",
                       "sparsity %", "crossbars", "MACs"});
  auto add = [&](dnn::DnnModel model) {
    const auto pruned = dnn::prune_model(model, setup.prune_seed);
    const auto mapping = system.map(pruned.model);
    table.add_row({pruned.model.name,
                   common::Table::integer(
                       static_cast<long long>(pruned.model.layers.size())),
                   common::Table::integer(pruned.model.total_weights()),
                   common::Table::num(
                       100.0 * pruned.model.overall_sparsity(), 3),
                   common::Table::integer(mapping.crossbars_used),
                   common::Table::integer(pruned.model.total_macs())});
  };
  for (dnn::DnnModel& m : dnn::paper_workloads()) add(std::move(m));
  add(dnn::make_mobilenetv1(data::DatasetKind::kCifar10));
  common::print_table("available workloads (paper nine + extensions)",
                      table);
  return 0;
}

int cmd_simulate(const std::string& workload, int argc, char** argv) {
  auto model = build_workload(workload);
  if (!model) {
    std::fprintf(stderr, "unknown workload '%s' (try: odin_cli workloads)\n",
                 workload.c_str());
    return 1;
  }
  const int crossbar =
      std::atoi(flag_value(argc, argv, "--crossbar").value_or("128").c_str());
  core::HorizonConfig horizon;
  horizon.runs =
      std::atoi(flag_value(argc, argv, "--runs").value_or("400").c_str());
  const auto baseline =
      parse_ou(flag_value(argc, argv, "--ou").value_or("16x16"));
  if (!baseline) {
    std::fprintf(stderr, "bad --ou (expected RxC)\n");
    return 1;
  }

  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality(crossbar);
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel mapped = setup.make_mapped(std::move(*model),
                                                   crossbar);
  core::OdinController controller(mapped, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(crossbar)));
  const auto odin = core::simulate_odin(controller, horizon);
  const auto base = core::simulate_homogeneous(mapped, nonideal, cost,
                                               *baseline, horizon);
  common::Table table({"scheme", "energy (mJ)", "latency (s)", "EDP (Js)",
                       "reprograms"});
  table.add_row({"Odin", common::Table::num(odin.total().energy_j * 1e3, 4),
                 common::Table::num(odin.total().latency_s, 4),
                 common::Table::num(odin.total_edp(), 4),
                 common::Table::integer(odin.reprograms)});
  table.add_row({baseline->to_string(),
                 common::Table::num(base.total().energy_j * 1e3, 4),
                 common::Table::num(base.total().latency_s, 4),
                 common::Table::num(base.total_edp(), 4),
                 common::Table::integer(base.reprograms)});
  common::print_table(mapped.model().name + " over [t0, 1e8 s], " +
                          std::to_string(horizon.runs) + " runs",
                      table);
  std::printf("Odin EDP advantage: %.2fx\n",
              base.total_edp() / odin.total_edp());
  return 0;
}

int cmd_train_policy(const std::string& path, int argc, char** argv) {
  const std::string family =
      flag_value(argc, argv, "--exclude").value_or("VGG");
  const int crossbar =
      std::atoi(flag_value(argc, argv, "--crossbar").value_or("128").c_str());
  const std::map<std::string, dnn::Family> families{
      {"ResNet", dnn::Family::kResNet},   {"VGG", dnn::Family::kVgg},
      {"GoogLeNet", dnn::Family::kGoogLeNet},
      {"DenseNet", dnn::Family::kDenseNet}, {"ViT", dnn::Family::kViT}};
  const auto it = families.find(family);
  if (it == families.end()) {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 1;
  }
  const core::Setup setup;
  std::printf("bootstrapping policy (excluding %s, crossbar %d)...\n",
              family.c_str(), crossbar);
  policy::OuPolicy policy =
      core::offline_policy_excluding(setup, it->second, crossbar);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  policy::save_policy(policy, out);
  std::printf("saved %zu-parameter policy to %s\n", policy.parameter_count(),
              path.c_str());
  return 0;
}

int cmd_best_ou(const std::string& workload, int argc, char** argv) {
  auto model = build_workload(workload);
  if (!model) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  const double t =
      std::atof(flag_value(argc, argv, "--time").value_or("1").c_str());
  const int only_layer =
      std::atoi(flag_value(argc, argv, "--layer").value_or("-1").c_str());

  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel mapped = setup.make_mapped(std::move(*model));
  const ou::OuLevelGrid grid(mapped.crossbar_size());
  const int n = static_cast<int>(mapped.layer_count());

  common::Table table({"layer", "name", "sparsity %", "best OU",
                       "EDP (Js)"});
  for (int j = 0; j < n; ++j) {
    if (only_layer >= 0 && j != only_layer) continue;
    const auto& layer = mapped.model().layers[static_cast<std::size_t>(j)];
    ou::LayerContext ctx{
        .mapping = &mapped.mapping(static_cast<std::size_t>(j)),
        .cost = &cost,
        .nonideal = &nonideal,
        .grid = &grid,
        .elapsed_s = t,
        .sensitivity = nonideal.layer_sensitivity(j, n)};
    const auto best = ou::exhaustive_search(ctx);
    table.add_row({common::Table::integer(j + 1), layer.name,
                   common::Table::num(100.0 * layer.weight_sparsity, 3),
                   best.found ? best.best.to_string() : "REPROGRAM",
                   best.found ? common::Table::num(best.edp, 4) : "-"});
  }
  char title[96];
  std::snprintf(title, sizeof(title), "%s best OU at t = %g s",
                mapped.model().name.c_str(), t);
  common::print_table(title, table);
  return 0;
}

/// Shared setup for the checkpoint/resume pair — both invocations must
/// build the identical serving configuration or the checkpoint's
/// fingerprint validation will (correctly) refuse to resume.
core::ServingConfig serving_config_from_flags(int argc, char** argv) {
  core::ServingConfig config;
  config.horizon.runs =
      std::atoi(flag_value(argc, argv, "--runs").value_or("120").c_str());
  config.segments =
      std::atoi(flag_value(argc, argv, "--segments").value_or("4").c_str());
  config.checkpoint.every_runs =
      std::atoi(flag_value(argc, argv, "--every").value_or("25").c_str());
  config.max_runs =
      std::atoi(flag_value(argc, argv, "--max-runs").value_or("0").c_str());
  return config;
}

void print_serving_summary(const core::ServingResult& result) {
  common::Table table({"tenant", "runs", "mismatches", "reprograms",
                       "EDP (Js)"});
  for (const core::TenantStats& t : result.tenants)
    table.add_row({t.name, common::Table::integer(t.runs),
                   common::Table::integer(t.mismatches),
                   common::Table::integer(t.reprograms),
                   common::Table::num((t.inference + t.reprogram).edp(), 4)});
  common::print_table(result.resumed ? "serving result (resumed)"
                                     : "serving result",
                      table);
  std::printf(
      "total: %d runs, EDP %.4f Js, %d policy updates "
      "(%d accepted, %d rejected, %d rolled back), %lld dropped\n",
      result.total_runs(), result.total_edp(), result.policy_updates,
      result.total_updates_accepted(), result.total_updates_rejected(),
      result.total_updates_rolled_back(), result.total_buffer_dropped());
}

void print_resilience_summary(const core::ServingResult& result) {
  common::Table table({"tenant", "SLO (s)", "p50 sojourn", "p99 sojourn",
                       "p99 slack", "misses", "shed", "brk o/c", "stalls"});
  for (const core::TenantStats& t : result.tenants) {
    char brk[32];
    std::snprintf(brk, sizeof(brk), "%d/%d", t.breaker_opens,
                  t.breaker_closes);
    table.add_row({t.name,
                   t.slo_s > 0.0 ? common::Table::num(t.slo_s, 4) : "-",
                   common::Table::num(t.sojourn_percentile(50.0), 4),
                   common::Table::num(t.sojourn_percentile(99.0), 4),
                   t.slo_s > 0.0
                       ? common::Table::num(t.slack_percentile(99.0), 4)
                       : "-",
                   common::Table::integer(t.deadline_misses),
                   common::Table::integer(t.shed_runs), brk,
                   common::Table::integer(t.watchdog_stalls)});
  }
  common::print_table("resilience (deadline/queue/breaker/watchdog)", table);
  std::printf(
      "resilience: %d shed, %d breaker-held, %d deadline misses, "
      "%d deferred reprograms, %d truncated searches, "
      "breakers %d open / %d reopen / %d probe / %d close, %d stalls\n",
      result.total_shed_runs(), result.total_breaker_open_runs(),
      result.total_deadline_misses(), result.total_deferred_reprograms(),
      result.total_searches_truncated(), result.total_breaker_opens(),
      result.total_breaker_reopens(), result.total_breaker_probes(),
      result.total_breaker_closes(), result.total_watchdog_stalls());
  if (result.total_batches_formed() > 0)
    std::printf(
        "batching: %d batches over %d runs (mean occupancy %.2f, "
        "max batch %d, %d SLO-capped)\n",
        result.total_batches_formed(), result.total_batch_members(),
        result.mean_batch_occupancy(), result.max_batch(),
        result.total_batch_slo_capped());
}

void print_wear_summary(const core::ServingResult& result,
                        const reram::FaultInjector& faults) {
  common::Table table({"tenant", "rows remapped", "xbars retired",
                       "writes leveled", "wear-deferred"});
  for (const core::TenantStats& t : result.tenants)
    table.add_row({t.name, common::Table::integer(t.rows_remapped),
                   common::Table::integer(t.crossbars_retired),
                   common::Table::integer(
                       static_cast<int>(t.writes_leveled)),
                   common::Table::integer(t.wear_deferred_reprograms)});
  common::print_table("wear leveling (rotate / remap / retire / migrate)",
                      table);
  std::printf(
      "wear: %d rows remapped, %d crossbars retired, %lld writes leveled, "
      "%d wear-deferred reprograms, %d of %d spare rows remaining\n",
      result.total_rows_remapped(), result.total_crossbars_retired(),
      result.total_writes_leveled(),
      result.total_wear_deferred_reprograms(), result.spares_remaining(),
      faults.params().leveling.resolved_spare_rows());
}

void print_fleet_summary(const core::FleetResult& fleet,
                         const std::vector<std::string>& names) {
  common::Table table({"shard", "tenants", "PEs", "xbars", "runs",
                       "busy (s)", "EDP (Js)"});
  for (std::size_t k = 0; k < fleet.shards.size(); ++k) {
    std::string members;
    for (int t : fleet.shard_tenants[k]) {
      if (!members.empty()) members += ",";
      members += names[static_cast<std::size_t>(t)];
    }
    table.add_row(
        {common::Table::integer(static_cast<long long>(k)),
         members.empty() ? "-" : members,
         common::Table::integer(
             static_cast<long long>(fleet.placement.shard_pes[k].size())),
         common::Table::integer(fleet.placement.shard_load[k]),
         common::Table::integer(fleet.shards[k].total_runs()),
         common::Table::num(fleet.shard_busy_s(k), 4),
         common::Table::num(fleet.shards[k].total_edp(), 4)});
  }
  common::print_table("fleet (NoC-/wear-aware sharded serving)", table);
  int pipelined = 0, displaced = 0;
  for (const core::ServingResult& r : fleet.shards)
    pipelined += r.total_pipelined_runs();
  for (const core::TenantPlacement& p : fleet.placement.tenants)
    displaced += p.wear_displaced ? 1 : 0;
  std::printf(
      "fleet: %zu shards, %d runs, makespan %.4f s, %.2f images/s, "
      "per-request EDP %.6g Js, pooled p99 slack %.4f s\n"
      "placement: load imbalance %.2f, objective %.4f, %d pipelined runs, "
      "%d tenant(s) steered off worn shards\n",
      fleet.shards.size(), fleet.total_runs(), fleet.makespan_s(),
      fleet.aggregate_images_per_s(), fleet.edp_per_request(),
      fleet.slack_percentile(99.0), fleet.placement.load_imbalance,
      fleet.placement.objective, pipelined, displaced);
}

int cmd_serve(int argc, char** argv) {
  const std::string list = flag_value(argc, argv, "--workloads")
                               .value_or("resnet18,vgg11,googlenet");
  std::vector<std::string> names;
  for (std::size_t pos = 0; pos <= list.size();) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    if (comma > pos) names.push_back(list.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (names.empty()) {
    std::fprintf(stderr, "--workloads needs at least one name\n");
    return 1;
  }
  const int crossbar =
      std::atoi(flag_value(argc, argv, "--crossbar").value_or("128").c_str());
  core::ServingConfig config = serving_config_from_flags(argc, argv);
  // Default to at least one segment per tenant so every workload serves.
  if (!flag_value(argc, argv, "--segments"))
    config.segments = static_cast<int>(std::max<std::size_t>(
        names.size(), static_cast<std::size_t>(config.segments)));
  core::ResilienceConfig& res = config.resilience;
  res.enabled = true;
  res.default_slo_s =
      std::atof(flag_value(argc, argv, "--slo").value_or("0").c_str());
  res.queue_capacity = static_cast<std::size_t>(std::atoi(
      flag_value(argc, argv, "--queue").value_or("8").c_str()));
  const std::string shed =
      flag_value(argc, argv, "--shed").value_or("oldest");
  if (shed == "block")
    res.shed = core::ShedPolicy::kBlock;
  else if (shed == "oldest")
    res.shed = core::ShedPolicy::kShedOldest;
  else if (shed == "newest")
    res.shed = core::ShedPolicy::kShedNewest;
  else {
    std::fprintf(stderr, "bad --shed (block|oldest|newest)\n");
    return 1;
  }
  res.search_eval_cost_s =
      std::atof(flag_value(argc, argv, "--eval-cost").value_or("0").c_str());
  res.breaker.window = std::atoi(
      flag_value(argc, argv, "--breaker-window").value_or("8").c_str());
  res.breaker.failure_threshold = std::atoi(
      flag_value(argc, argv, "--breaker-threshold").value_or("4").c_str());
  res.watchdog_bound_s =
      std::atof(
          flag_value(argc, argv, "--watchdog-ms").value_or("0").c_str()) *
      1e-3;
  if (const auto batch_max = flag_value(argc, argv, "--batch-max")) {
    res.batching.enabled = true;
    res.batching.max_batch = std::atoi(batch_max->c_str());
  }

  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality(crossbar);
  const ou::OuCostModel cost = setup.make_cost();
  std::vector<ou::MappedModel> owned;
  owned.reserve(names.size());
  for (const std::string& name : names) {
    auto model = build_workload(name);
    if (!model) {
      std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
      return 1;
    }
    owned.push_back(setup.make_mapped(std::move(*model), crossbar));
  }
  std::vector<const ou::MappedModel*> tenants;
  for (const ou::MappedModel& m : owned) tenants.push_back(&m);

  // --shards N: partition the mesh and serve shards concurrently. With
  // --wear each shard owns a private injector seeded SEED+k so the
  // placement's wear term has distinct device histories to steer by.
  core::FleetConfig fleet;
  fleet.serving = config;
  fleet.shards = std::atoi(
      flag_value(argc, argv, "--shards").value_or("0").c_str());
  const int shards = fleet.resolved_shards();
  if (shards > 1) {
    std::vector<reram::FaultInjector> owned_faults;
    std::vector<reram::FaultInjector*> shard_faults;
    if (const auto wear_seed = flag_value(argc, argv, "--wear")) {
      reram::FaultScheduleParams wear;
      wear.leveling.enabled = true;
      const auto seed = static_cast<std::uint64_t>(
          std::strtoull(wear_seed->c_str(), nullptr, 10));
      owned_faults.reserve(static_cast<std::size_t>(shards));
      for (int k = 0; k < shards; ++k)
        owned_faults.emplace_back(wear, seed + static_cast<std::uint64_t>(k));
      for (reram::FaultInjector& f : owned_faults)
        shard_faults.push_back(&f);
    }
    const auto fleet_result = core::serve_fleet(
        tenants, nonideal, cost,
        policy::OuPolicy(ou::OuLevelGrid(crossbar)), fleet, shard_faults);
    print_fleet_summary(fleet_result, names);
    return 0;
  }

  // --wear SEED: share a wear-leveled injector across the tenants so the
  // serve report shows the rotate/remap/retire/migrate ladder in action.
  std::optional<reram::FaultInjector> faults;
  if (const auto wear_seed = flag_value(argc, argv, "--wear")) {
    reram::FaultScheduleParams wear;
    wear.leveling.enabled = true;
    faults.emplace(wear, static_cast<std::uint64_t>(
                             std::strtoull(wear_seed->c_str(), nullptr, 10)));
  }

  const auto result = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(crossbar)),
      config, faults ? &*faults : nullptr);
  print_serving_summary(result);
  print_resilience_summary(result);
  if (faults) print_wear_summary(result, *faults);
  return 0;
}

int cmd_checkpoint(const std::string& base, int argc, char** argv) {
  const std::string workload =
      flag_value(argc, argv, "--workload").value_or("resnet18");
  auto model = build_workload(workload);
  if (!model) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  const int crossbar =
      std::atoi(flag_value(argc, argv, "--crossbar").value_or("128").c_str());
  core::ServingConfig config = serving_config_from_flags(argc, argv);
  config.checkpoint.base_path = base;

  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality(crossbar);
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel mapped = setup.make_mapped(std::move(*model),
                                                   crossbar);
  const auto result = core::serve_with_odin(
      {&mapped}, nonideal, cost,
      policy::OuPolicy(ou::OuLevelGrid(crossbar)), config);
  print_serving_summary(result);
  if (config.max_runs > 0 && result.total_runs() < config.horizon.runs)
    std::printf("stopped after %d runs (simulated crash); resume with:\n"
                "  odin_cli resume %s --workload %s --runs %d --segments %d"
                " --crossbar %d\n",
                result.total_runs(), base.c_str(), workload.c_str(),
                config.horizon.runs, config.segments, crossbar);
  return 0;
}

int cmd_resume(const std::string& base, int argc, char** argv) {
  auto ckpt = core::load_latest_checkpoint(base);
  if (!ckpt) {
    std::fprintf(stderr, "no valid checkpoint at %s.{a,b}\n", base.c_str());
    return 1;
  }
  const std::string workload =
      flag_value(argc, argv, "--workload").value_or("resnet18");
  auto model = build_workload(workload);
  if (!model) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  const int crossbar =
      std::atoi(flag_value(argc, argv, "--crossbar").value_or("128").c_str());
  core::ServingConfig config = serving_config_from_flags(argc, argv);
  config.checkpoint.base_path = base;  // keep checkpointing while resuming
  config.max_runs = 0;                 // finish the horizon

  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality(crossbar);
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel mapped = setup.make_mapped(std::move(*model),
                                                   crossbar);
  std::printf("loaded checkpoint seq %llu (segment %llu, next run %llu)\n",
              static_cast<unsigned long long>(ckpt->sequence),
              static_cast<unsigned long long>(ckpt->segment),
              static_cast<unsigned long long>(ckpt->next_run));
  const auto result =
      core::resume_with_odin({&mapped}, nonideal, cost, *ckpt, config);
  if (!result) {
    std::fprintf(stderr,
                 "checkpoint does not match this configuration "
                 "(check --runs/--segments/--workload/--crossbar)\n");
    return 1;
  }
  print_serving_summary(*result);
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  core::CampaignConfig cfg;
  // A scenario file seeds the configuration; flags override it.
  if (const auto file = flag_value(argc, argv, "--file")) {
    auto parsed = core::parse_scenario_file(*file);
    if (!parsed) return 1;
    cfg = std::move(*parsed);
  }
  if (const auto v = flag_value(argc, argv, "--seed"))
    cfg.scenario.seed = std::strtoull(v->c_str(), nullptr, 10);
  if (const auto v = flag_value(argc, argv, "--tenants"))
    cfg.scenario.tenants = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--requests"))
    cfg.scenario.requests = std::atoll(v->c_str());
  if (const auto v = flag_value(argc, argv, "--shards"))
    cfg.shards = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--epochs"))
    cfg.epochs = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--autoscale")) {
    if (*v != "on" && *v != "off" && *v != "1" && *v != "0") {
      std::fprintf(stderr, "bad --autoscale (on|off|1|0)\n");
      return 1;
    }
    cfg.autoscale.enabled = (*v == "on" || *v == "1") ? 1 : 0;
  }
  if (const auto v = flag_value(argc, argv, "--checkpoint"))
    cfg.checkpoint.base_path = *v;
  if (const auto v = flag_value(argc, argv, "--every"))
    cfg.checkpoint.every_runs = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--max-requests"))
    cfg.max_requests = std::atoll(v->c_str());

  bool resume = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--resume") == 0) resume = true;

  std::optional<core::CampaignResult> result;
  if (resume) {
    if (cfg.checkpoint.base_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint BASE\n");
      return 1;
    }
    result = core::resume_campaign(cfg);
    if (!result) {
      std::fprintf(stderr,
                   "no matching campaign checkpoint at %s.{a,b} "
                   "(check --seed/--tenants/--requests/--shards/--epochs/"
                   "--autoscale)\n",
                   cfg.checkpoint.base_path.c_str());
      return 1;
    }
  } else {
    result = core::run_campaign(cfg);
  }
  std::fputs(result->summary().c_str(), stdout);
  if (cfg.max_requests > 0 &&
      result->requests() < cfg.scenario.requests &&
      !cfg.checkpoint.base_path.empty())
    std::printf(
        "stopped after %lld requests (simulated crash); resume with:\n"
        "  odin_cli campaign --resume --checkpoint %s [same flags]\n",
        static_cast<long long>(result->requests()),
        cfg.checkpoint.base_path.c_str());
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  core::ClusterConfig cfg;
  // A cluster scenario file seeds the configuration; flags override it.
  if (const auto file = flag_value(argc, argv, "--file")) {
    auto parsed = core::parse_cluster_file(*file);
    if (!parsed) return 1;
    cfg = std::move(*parsed);
  }
  if (const auto v = flag_value(argc, argv, "--seed"))
    cfg.campaign.scenario.seed = std::strtoull(v->c_str(), nullptr, 10);
  if (const auto v = flag_value(argc, argv, "--tenants"))
    cfg.campaign.scenario.tenants = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--requests"))
    cfg.campaign.scenario.requests = std::atoll(v->c_str());
  if (const auto v = flag_value(argc, argv, "--shards"))
    cfg.campaign.shards = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--epochs"))
    cfg.campaign.epochs = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--meshes"))
    cfg.meshes = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--replication-epochs"))
    cfg.replication_epochs = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--failover")) {
    if (*v != "on" && *v != "off" && *v != "1" && *v != "0") {
      std::fprintf(stderr, "bad --failover (on|off|1|0)\n");
      return 1;
    }
    cfg.failover.enabled = (*v == "on" || *v == "1") ? 1 : 0;
  }
  if (const auto v = flag_value(argc, argv, "--mesh-outages"))
    cfg.mesh_outages = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--autoscale")) {
    if (*v != "on" && *v != "off" && *v != "1" && *v != "0") {
      std::fprintf(stderr, "bad --autoscale (on|off|1|0)\n");
      return 1;
    }
    cfg.campaign.autoscale.enabled = (*v == "on" || *v == "1") ? 1 : 0;
  }
  if (const auto v = flag_value(argc, argv, "--checkpoint"))
    cfg.campaign.checkpoint.base_path = *v;
  if (const auto v = flag_value(argc, argv, "--every"))
    cfg.campaign.checkpoint.every_runs = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--max-requests"))
    cfg.campaign.max_requests = std::atoll(v->c_str());

  bool resume = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--resume") == 0) resume = true;

  std::optional<core::ClusterResult> result;
  if (resume) {
    if (cfg.campaign.checkpoint.base_path.empty()) {
      std::fprintf(stderr, "--resume needs --checkpoint BASE\n");
      return 1;
    }
    result = core::resume_cluster(cfg);
    if (!result) {
      std::fprintf(stderr,
                   "no matching cluster checkpoint at %s.{a,b} "
                   "(check --seed/--tenants/--requests/--shards/--epochs/"
                   "--meshes/--replication-epochs/--failover)\n",
                   cfg.campaign.checkpoint.base_path.c_str());
      return 1;
    }
  } else {
    result = core::run_cluster(cfg);
  }
  std::fputs(result->summary().c_str(), stdout);
  if (cfg.campaign.max_requests > 0 &&
      result->campaign.requests() < cfg.campaign.scenario.requests &&
      !cfg.campaign.checkpoint.base_path.empty())
    std::printf(
        "stopped after %lld requests (simulated crash); resume with:\n"
        "  odin_cli cluster --resume --checkpoint %s [same flags]\n",
        static_cast<long long>(result->campaign.requests()),
        cfg.campaign.checkpoint.base_path.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: odin_cli <command> [...]\n"
               "  workloads\n"
               "  simulate <workload> [--crossbar N] [--runs N] [--ou RxC]\n"
               "  train-policy <file> [--exclude FAMILY] [--crossbar N]\n"
               "  best-ou <workload> [--layer J] [--time T]\n"
               "  checkpoint <base> [--workload W] [--runs N] [--segments K]"
               " [--every N] [--max-runs N] [--crossbar N]\n"
               "  resume <base> [--workload W] [--runs N] [--segments K]"
               " [--crossbar N]\n"
               "  campaign [--file SCENARIO] [--seed N] [--tenants N]"
               " [--requests N]\n"
               "           [--shards N] [--epochs N] [--autoscale on|off]\n"
               "           [--checkpoint BASE] [--every N] [--max-requests N]"
               " [--resume]\n"
               "     (seeded, replayable workload-trace campaign on the"
               " 36-PE mesh:\n"
               "      diurnal arrivals, flash crowds, tenant churn,"
               " correlated fault\n"
               "      storms, reactive autoscaling; --file reads a scenario"
               " file\n"
               "      (docs/scenario_format.md), --max-requests simulates a"
               " crash,\n"
               "      --resume continues from the checkpoint pair bitwise)\n"
               "  cluster [--file SCENARIO] [--seed N] [--tenants N]"
               " [--requests N]\n"
               "          [--shards N] [--epochs N] [--meshes N]"
               " [--replication-epochs N]\n"
               "          [--failover on|off] [--mesh-outages N]"
               " [--autoscale on|off]\n"
               "          [--checkpoint BASE] [--every N] [--max-requests N]"
               " [--resume]\n"
               "     (the campaign across N independent meshes with"
               " mesh-loss fault\n"
               "      domains: seeded outage windows, checkpoint replication"
               " to a peer\n"
               "      mesh every --replication-epochs epochs, and bounded-RTO"
               " tenant\n"
               "      evacuation onto surviving meshes under degraded"
               " admission;\n"
               "      --meshes 0 = the ODIN_MESHES default, cluster keys in"
               " the scenario\n"
               "      file per docs/scenario_format.md; reports per-tenant"
               " RTO/RPO)\n"
               "  serve [--workloads A,B,C] [--runs N] [--segments K]"
               " [--crossbar N]\n"
               "        [--slo S] [--queue N] [--shed block|oldest|newest]"
               " [--eval-cost S]\n"
               "        [--breaker-window N] [--breaker-threshold N]"
               " [--watchdog-ms N]\n"
               "        [--batch-max N] [--wear SEED] [--shards N]\n"
               "     (serve counters: shed runs, deadline misses, deferred"
               " reprograms,\n"
               "      truncated searches, breaker open/reopen/probe/close,"
               " watchdog stalls,\n"
               "      p50/p99 sojourn and deadline slack per tenant;"
               " --batch-max N\n"
               "      enables deadline-aware batch formation, 0 = the"
               " ODIN_BATCH_MAX default;\n"
               "      --wear SEED serves against a wear-leveled injector"
               " and reports rows\n"
               "      remapped, crossbars retired, leveled writes and spare"
               " rows left —\n"
               "      pool size from ODIN_SPARE_ROWS, retirement threshold"
               " from ODIN_WEAR_BUDGET;\n"
               "      --shards N serves a sharded fleet with NoC-/wear-aware"
               " placement and\n"
               "      per-shard loops, 0 = the ODIN_SHARDS default)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "workloads") return cmd_workloads();
  if (cmd == "simulate" && argc >= 3) return cmd_simulate(argv[2], argc, argv);
  if (cmd == "train-policy" && argc >= 3)
    return cmd_train_policy(argv[2], argc, argv);
  if (cmd == "best-ou" && argc >= 3) return cmd_best_ou(argv[2], argc, argv);
  // <base> is positional; a flag in its place would otherwise become a
  // checkpoint file literally named "--workload.a".
  if (cmd == "checkpoint" && argc >= 3 && argv[2][0] != '-')
    return cmd_checkpoint(argv[2], argc, argv);
  if (cmd == "resume" && argc >= 3 && argv[2][0] != '-')
    return cmd_resume(argv[2], argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "cluster") return cmd_cluster(argc, argv);
  return usage();
}
