// Accuracy under device non-idealities, two ways (the PytorX substitute):
//
//  (a) Monte-Carlo: a reference classifier is trained from scratch on a
//      synthetic CIFAR-10-shaped dataset, its weights are perturbed exactly
//      as the drift/IR-drop errors act, and accuracy is re-measured.
//  (b) Crossbar-in-the-loop: one layer of the classifier is evaluated
//      through the behavioural analog crossbar (OU-tiled MVM with ADC
//      quantization) to show the error path at circuit level.
//
// Together they validate the analytical accuracy surrogate used by the
// Fig. 7 bench.
#include <cstdio>
#include <vector>

#include "core/accuracy.hpp"
#include "reram/crossbar.hpp"

using namespace odin;

int main() {
  data::SyntheticDataset dataset(
      data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 2024);
  std::printf("training reference classifier on synthetic %s-shaped data"
              "...\n",
              dataset.spec().name.c_str());
  core::MonteCarloAccuracy mc(dataset);
  const double ideal = mc.ideal_accuracy();
  std::printf("ideal accuracy: %.3f (chance %.2f)\n\n", ideal,
              1.0 / dataset.spec().classes);

  // (a.1) The calibrated drift horizon: the injected errors stay below a
  // few percent, which a well-trained classifier absorbs — this is exactly
  // the excess-based surrogate's "no loss within budget" region.
  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  std::printf("%12s %10s %10s %14s\n", "time (s)", "drift NF", "IR NF",
              "MC accuracy");
  constexpr int kSeeds = 5;
  for (double t : {1.0, 1e4, 1e8}) {
    const double drift = nonideal.drift_nf(t);
    const double ir = nonideal.ir_nf(t, {16, 16});
    double acc = 0.0;
    for (std::uint64_t s = 1; s <= kSeeds; ++s)
      acc += mc.accuracy_under(drift, ir, s);
    std::printf("%12.4g %10.4f %10.4f %14.3f\n", t, drift, ir, acc / kSeeds);
  }
  std::printf("(within-budget errors cost nothing — Fig. 7's flat "
              "reprogram-enabled curves)\n\n");

  // (a.2) The full response curve: scale the errors past the budget to
  // locate the accuracy cliff the Fig. 7 "no reprogramming" curves fall
  // off. This is the monotone shape the analytical surrogate encodes.
  std::printf("%12s %10s %14s\n", "drift NF", "IR NF", "MC accuracy");
  for (double scale : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7}) {
    double acc = 0.0;
    for (std::uint64_t s = 1; s <= kSeeds; ++s)
      acc += mc.accuracy_under(scale, 0.6 * scale, s);
    std::printf("%12.3f %10.3f %14.3f\n", scale, 0.6 * scale, acc / kSeeds);
  }
  std::printf("(accuracy decays monotonically once errors exceed what the "
              "network tolerates)\n\n");

  // (b) Circuit-level: run a small MVM through the behavioural crossbar.
  const reram::DeviceParams dev;
  reram::Crossbar xbar(64, dev,
                       reram::NoiseModel(reram::NoiseParams{}, 7));
  common::Rng rng(5);
  std::vector<double> weights(64 * 16);
  for (double& w : weights) w = rng.uniform(-1.0, 1.0);
  xbar.program(weights, 64, 16, 0.0);
  std::vector<double> input(64);
  for (double& v : input) v = rng.uniform();

  const auto ideal_out = xbar.ideal_mvm(input);
  std::printf("crossbar MVM error vs OU shape and drift (64x16 weights, "
              "6-bit ADC):\n%10s %12s %12s\n", "OU", "t=1 s", "t=1e8 s");
  for (ou::OuConfig cfg : {ou::OuConfig{4, 4}, ou::OuConfig{16, 16},
                           ou::OuConfig{64, 16}}) {
    double err[2] = {0.0, 0.0};
    const double times[2] = {1.0, 1e8};
    for (int k = 0; k < 2; ++k) {
      const auto out = xbar.mvm(input, cfg.rows, cfg.cols, times[k], 6);
      double acc = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i)
        acc += (out[i] - ideal_out[i]) * (out[i] - ideal_out[i]);
      err[k] = std::sqrt(acc / static_cast<double>(out.size()));
    }
    std::printf("%10s %12.4f %12.4f\n", cfg.to_string().c_str(), err[0],
                err[1]);
  }
  std::printf("(error grows with OU size and with drift time — Eq. 4 at "
              "circuit level)\n");
  return 0;
}
