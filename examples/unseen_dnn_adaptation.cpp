// Online adaptation to an unseen DNN (the scenario of paper Fig. 5).
//
// An offline policy is bootstrapped from the ResNet / GoogLeNet / DenseNet /
// ViT families, then deployed on a VGG16 it has never seen. The example
// traces how the policy's own predictions converge to the search's best
// decisions as mismatch-driven training examples accumulate and the buffer
// triggers online updates.
#include <cstdio>

#include "core/experiment.hpp"

using namespace odin;

int main() {
  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  std::printf("bootstrapping offline policy from non-VGG families...\n");
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);

  ou::MappedModel vgg16 =
      setup.make_mapped(dnn::make_vgg16(data::DatasetKind::kCifar100));
  std::printf("deploying on unseen VGG16/CIFAR-100 (%zu layers)\n\n",
              vgg16.layer_count());

  core::OdinConfig config;
  config.buffer_capacity = 20;  // smaller buffer -> visible update cadence
  core::OdinController controller(vgg16, nonideal, cost, std::move(offline),
                                  config);

  const core::HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e4,
                                    .runs = 40};
  std::printf("%5s %12s %12s %9s %8s\n", "run", "time (s)", "mismatches",
              "updates", "EDP (Js)");
  int run_index = 0;
  int total_mismatches = 0;
  for (double t : core::run_schedule(horizon)) {
    const core::RunResult run = controller.run_inference(t);
    total_mismatches += run.mismatches;
    std::printf("%5d %12.4g %6d/%-5zu %9d %8.3g%s\n", run_index++, t,
                run.mismatches, run.decisions.size(),
                controller.update_count(), run.inference.edp(),
                run.policy_updated ? "  <- policy updated" : "");
  }

  std::printf("\n%d mismatches across %d runs; %d online updates; "
              "final-run agreement: %zu/%zu layers\n",
              total_mismatches, horizon.runs, controller.update_count(),
              vgg16.layer_count() -
                  static_cast<std::size_t>(
                      controller.run_inference(1.01e4).mismatches),
              vgg16.layer_count());
  return 0;
}
