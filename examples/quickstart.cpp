// Quickstart: the shortest path through the Odin public API.
//
//   1. Build a DNN workload description and prune it (crossbar-aware).
//   2. Map it onto ReRAM crossbars.
//   3. Ask the analytical models for the best OU configuration of a layer.
//   4. Run the Odin online-learning controller for a few inference runs and
//      compare its energy-delay product against a homogeneous 16x16 OU.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "ou/search.hpp"

using namespace odin;

int main() {
  // One Setup bundles Tables I-II plus the calibrated model constants.
  const core::Setup setup;

  // 1+2. A paper workload, pruned and mapped onto 128x128 crossbars.
  ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  std::printf("VGG11 on CIFAR-10: %zu layers, %lld weights, %.1f%% sparse, "
              "%lld crossbars occupied\n",
              vgg11.layer_count(), vgg11.model().total_weights(),
              100.0 * vgg11.model().overall_sparsity(),
              setup.make_system().map(vgg11.model()).crossbars_used);

  // 3. Best OU for layer 0 at t0, straight from the analytical models.
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(vgg11.crossbar_size());
  ou::LayerContext ctx{
      .mapping = &vgg11.mapping(0),
      .cost = &cost,
      .nonideal = &nonideal,
      .grid = &grid,
      .elapsed_s = setup.device.t0_s,
      .sensitivity = nonideal.layer_sensitivity(
          0, static_cast<int>(vgg11.layer_count()))};
  const ou::SearchResult best = ou::exhaustive_search(ctx);
  std::printf("layer 0 ('%s'): best OU at t0 is %s (EDP %.3g Js, %d "
              "configurations evaluated)\n",
              vgg11.model().layers[0].name.c_str(),
              best.best.to_string().c_str(), best.edp, best.evaluations);

  // 4. Odin online loop vs a homogeneous 16x16 baseline across the full
  //    drift horizon, where the baseline's reprogramming burden shows up.
  //    (The per-figure reproductions live in bench/.)
  core::OdinController odin(vgg11, nonideal, cost, policy::OuPolicy(grid));
  const core::HorizonConfig horizon{.runs = 200};
  const auto odin_result = core::simulate_odin(odin, horizon);
  const auto base_result =
      core::simulate_homogeneous(vgg11, nonideal, cost, {16, 16}, horizon);
  std::printf("over %d runs in [1, 1e8] s:\n", horizon.runs);
  std::printf("  Odin : %.3g J, %.3g s, EDP %.3g Js "
              "(%d policy updates, %d reprograms)\n",
              odin_result.total().energy_j, odin_result.total().latency_s,
              odin_result.total_edp(), odin_result.policy_updates,
              odin_result.reprograms);
  std::printf("  16x16: %.3g J, %.3g s, EDP %.3g Js (%d reprograms)\n",
              base_result.total().energy_j, base_result.total().latency_s,
              base_result.total_edp(), base_result.reprograms);
  std::printf("  Odin EDP advantage: %.2fx\n",
              base_result.total_edp() / odin_result.total_edp());
  return 0;
}
