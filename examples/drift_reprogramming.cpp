// Conductance drift and reprogramming over the full [t0, 1e8 s] horizon
// (the mechanism behind paper Figs. 4, 6 and 7).
//
// Prints the timeline of reprogramming events for homogeneous OU baselines
// and for Odin, plus how Odin's per-layer OU choices shrink as drift
// accumulates — and snap back after its single reprogram.
#include <cstdio>

#include "core/experiment.hpp"

using namespace odin;

int main() {
  const core::Setup setup;
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const ou::OuLevelGrid grid(resnet18.crossbar_size());

  const core::HorizonConfig horizon{};
  const auto schedule = core::run_schedule(horizon);

  // Baselines: collect reprogram timestamps.
  for (ou::OuConfig cfg : core::paper_baseline_configs()) {
    core::HomogeneousRunner runner(resnet18, nonideal, cost, cfg);
    std::vector<double> events;
    for (double t : schedule)
      if (runner.run_inference(t).reprogrammed) events.push_back(t);
    std::printf("%-6s : %2d reprograms", cfg.to_string().c_str(),
                runner.reprogram_count());
    if (!events.empty()) {
      std::printf("  (first at t=%.3g s", events.front());
      if (events.size() > 1)
        std::printf(", last at t=%.3g s", events.back());
      std::printf(")");
    }
    std::printf("\n");
  }

  // Odin: trace the mean OU product so the drift-driven shrink is visible.
  core::OdinController odin(resnet18, nonideal, cost,
                            policy::OuPolicy(grid));
  std::printf("\nOdin mean OU product along the horizon:\n");
  std::printf("%12s %14s %10s\n", "time (s)", "mean product", "event");
  int printed = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const core::RunResult run = odin.run_inference(schedule[i]);
    double mean_product = 0.0;
    for (const auto& d : run.decisions)
      mean_product += static_cast<double>(d.executed.product());
    mean_product /= static_cast<double>(run.decisions.size());
    const bool show = i % 80 == 0 || run.reprogrammed ||
                      i + 1 == schedule.size();
    if (show && printed++ < 25)
      std::printf("%12.4g %14.0f %10s\n", schedule[i], mean_product,
                  run.reprogrammed ? "REPROGRAM" : "");
  }
  std::printf("\nOdin reprogrammed %d time(s) over the horizon "
              "(paper: once).\n",
              odin.reprogram_count());
  return 0;
}
