// PIM-in-the-loop convolution: lower a conv layer with im2col, program its
// weights into behavioural ReRAM crossbars, and execute the layer as
// OU-tiled analog MVMs — the computation Table I's tile performs — then
// compare against the ideal digital result across OU sizes and drift times.
//
// This demonstrates the full substrate stack working together: nn::conv
// (im2col), reram::Crossbar (analog MVM + ADC), and the OU configuration
// trade-off that Odin's cost/non-ideality models capture analytically.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "nn/conv.hpp"
#include "reram/crossbar.hpp"

using namespace odin;

namespace {

/// Root-mean-square error between two equal-size vectors.
double rms(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  // A CIFAR-10-shaped input image and a 3x3 conv: 3 -> 32 channels.
  data::SyntheticDataset dataset(
      data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 99);
  const nn::Image image = dataset.sample(0).image;
  const nn::ConvSpec spec{.in_channels = 3, .out_channels = 32, .kernel = 3,
                          .stride = 1, .padding = 1};

  // Random conv weights in [-1, 1], as a [patch_size x out_channels] matrix.
  common::Rng rng(7);
  nn::Matrix weights(static_cast<std::size_t>(spec.patch_size()),
                     static_cast<std::size_t>(spec.out_channels));
  for (double& w : weights.flat()) w = rng.uniform(-1.0, 1.0);

  // Lower the image: each im2col row is one MVM input vector.
  const nn::Matrix cols = nn::im2col(image, spec);
  std::printf("conv %dx%d: %zu positions x %d-wide patches -> %d outputs\n",
              spec.kernel, spec.kernel, cols.rows(), spec.patch_size(),
              spec.out_channels);

  // Program the (27 x 32) weight block into one 128x128 crossbar.
  const reram::DeviceParams dev;
  reram::Crossbar xbar(128, dev);
  std::vector<double> flat(weights.flat().begin(), weights.flat().end());
  xbar.program(flat, spec.patch_size(), spec.out_channels, 0.0);
  std::printf("programmed %lld cells (%.1f%% of the weight block)\n\n",
              static_cast<long long>(xbar.programmed_cells()),
              100.0 * static_cast<double>(xbar.programmed_cells()) /
                  (spec.patch_size() * spec.out_channels));

  // Reference: ideal (quantized-weight) MVM per position.
  std::vector<std::vector<double>> ideal;
  ideal.reserve(cols.rows());
  for (std::size_t p = 0; p < cols.rows(); ++p) {
    auto row = cols.row(p);
    ideal.push_back(
        xbar.ideal_mvm(std::vector<double>(row.begin(), row.end())));
  }

  auto sweep = [&](int rows, int cols_, int adc_bits, double t) {
    double acc = 0.0;
    for (std::size_t p = 0; p < cols.rows(); ++p) {
      auto row = cols.row(p);
      const auto out = xbar.mvm(std::vector<double>(row.begin(), row.end()),
                                rows, cols_, t, adc_bits);
      acc += rms(out, ideal[p]);
    }
    return acc / static_cast<double>(cols.rows());
  };

  struct Case {
    int rows, cols_, paper_bits;
  };
  const Case cases[] = {{4, 4, 3}, {8, 8, 3}, {16, 16, 4}, {27, 32, 5}};

  // Regime 1: ideal 12-bit ADCs isolate the device non-idealities — error
  // grows with OU size (IR drop) and drift time, exactly Eq. 4's story.
  std::printf("12-bit ADC (device non-idealities isolated):\n");
  std::printf("%8s  %12s %12s %12s\n", "OU", "t = t0", "t = 1e4 s",
              "t = 1e8 s");
  for (const Case c : cases)
    std::printf("%4dx%-3d  %12.4f %12.4f %12.4f\n", c.rows, c.cols_,
                sweep(c.rows, c.cols_, 12, dev.t0_s),
                sweep(c.rows, c.cols_, 12, 1e4),
                sweep(c.rows, c.cols_, 12, 1e8));

  // Regime 2: the paper's reconfigurable 3-6 bit ADCs — fine OUs split the
  // dot product into many low-precision partial sums whose quantization
  // errors accumulate. This is the other half of the "smaller OU sizes can
  // lead to higher latency and energy" (and error) cost that makes OU
  // sizing a genuine optimization problem rather than "always go fine".
  std::printf("\nreconfigurable 3-6 bit ADC (paper Table I):\n");
  std::printf("%8s %6s  %12s\n", "OU", "bits", "t = t0");
  for (const Case c : cases)
    std::printf("%4dx%-3d %6d  %12.4f\n", c.rows, c.cols_, c.paper_bits,
                sweep(c.rows, c.cols_, c.paper_bits, dev.t0_s));

  std::printf("\nwith precise ADCs, error grows with OU size (IR drop) and "
              "drift time; with cost-scaled ADCs, fine OUs pay accumulated "
              "quantization instead. Odin's analytical models navigate this "
              "trade-off without simulating every cell.\n");
  return 0;
}
