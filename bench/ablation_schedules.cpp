// Ablation — inference-arrival schedule sensitivity.
//
// The paper leaves the arrival process implicit. EDP totals depend on how
// much traffic lands late in the drift horizon, where Odin is forced into
// fine OUs and homogeneous coarse OUs are reprogramming constantly. This
// bench quantifies Odin's advantage under log-uniform (default), uniform-
// in-time, and Poisson arrivals.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

namespace {

core::AggregateResult simulate_on(
    const std::vector<double>& schedule, const ou::MappedModel& model,
    const ou::NonIdealityModel& nonideal, const ou::OuCostModel& cost,
    std::optional<ou::OuConfig> homogeneous) {
  core::AggregateResult agg;
  if (homogeneous) {
    core::HomogeneousRunner runner(model, nonideal, cost, *homogeneous);
    agg.label = homogeneous->to_string();
    for (double t : schedule) {
      const auto run = runner.run_inference(t);
      agg.inference += run.inference;
      agg.reprogram += run.reprogram;
      ++agg.runs;
    }
    agg.reprograms = runner.reprogram_count();
  } else {
    core::OdinController controller(model, nonideal, cost,
                                    policy::OuPolicy(ou::OuLevelGrid(128)));
    agg.label = "Odin";
    for (double t : schedule) {
      const auto run = controller.run_inference(t);
      agg.inference += run.inference;
      agg.reprogram += run.reprogram;
      ++agg.runs;
    }
    agg.reprograms = controller.reprogram_count();
  }
  return agg;
}

}  // namespace

int main() {
  bench::banner("Ablation: inference-run arrival schedules");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const core::HorizonConfig horizon{.runs = 400};

  const std::pair<core::ScheduleKind, const char*> kinds[] = {
      {core::ScheduleKind::kLogUniform, "log-uniform"},
      {core::ScheduleKind::kUniform, "uniform"},
      {core::ScheduleKind::kPoisson, "poisson"},
  };
  common::Table table({"schedule", "16x16 EDP (Js)", "16x16 reprograms",
                       "Odin EDP (Js)", "Odin reprograms",
                       "Odin advantage"});
  for (const auto& [kind, name] : kinds) {
    const auto schedule = core::make_schedule(kind, horizon);
    const auto base = simulate_on(schedule, resnet18, nonideal, cost,
                                  ou::OuConfig{16, 16});
    const auto odin = simulate_on(schedule, resnet18, nonideal, cost,
                                  std::nullopt);
    table.add_row({name, common::Table::num(base.total_edp(), 4),
                   common::Table::integer(base.reprograms),
                   common::Table::num(odin.total_edp(), 4),
                   common::Table::integer(odin.reprograms),
                   common::Table::num(base.total_edp() / odin.total_edp(),
                                      3)});
  }
  common::print_table("ResNet18/CIFAR-10, 400 runs over [t0, 1e8 s]", table);
  std::printf("\n[shape] uniform-in-time arrivals concentrate traffic in the "
              "late drift regime: the 16x16 baseline reprograms on almost "
              "every gap while Odin rides fine OUs — the advantage "
              "persists across arrival processes.\n");
  return 0;
}
