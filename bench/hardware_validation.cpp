// Circuit-level validation of the accuracy story behind Fig. 7.
//
// A classifier trained in-repo runs on the behavioural analog crossbars
// (OU-tiled MVM, reconfigurable ADC, per-cell drift variation). We sweep
// time and OU size and report accuracy plus logit fidelity, with and
// without a reprogram at the point where Algorithm 1 would trigger one —
// tying the analytical surrogate's claims to an actual datapath.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/hardware_inference.hpp"
#include "data/synthetic.hpp"

using namespace odin;

namespace {

double logit_deviation(core::HardwareMlpRunner& hw, const nn::Dataset& data,
                       ou::OuConfig ou, double t_s) {
  double acc = 0.0;
  constexpr std::size_t kSamples = 30;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto fresh = hw.logits(data.inputs.row(i), ou, 1.0);
    const auto later = hw.logits(data.inputs.row(i), ou, t_s);
    double d = 0.0, n = 0.0;
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      d += (fresh[k] - later[k]) * (fresh[k] - later[k]);
      n += fresh[k] * fresh[k];
    }
    acc += std::sqrt(d / std::max(n, 1e-12));
  }
  return acc / kSamples;
}

}  // namespace

int main() {
  bench::banner("Hardware-in-the-loop validation of the accuracy model");
  bench::Stopwatch clock;

  data::SyntheticDataset dataset(
      data::DatasetSpec::for_kind(data::DatasetKind::kCifar10), 77);
  nn::MultiHeadMlp model(
      nn::MlpConfig{.inputs = dataset.feature_count(4), .hidden = {48},
                    .heads = {10}},
      5);
  nn::Dataset train = dataset.as_feature_dataset(400, 4);
  nn::TrainOptions opt;
  opt.epochs = 30;
  opt.batch_size = 32;
  opt.learning_rate = 3e-3;
  nn::fit(model, train, opt);
  const double software = nn::exact_match_accuracy(model, train);
  std::printf("[setup] reference classifier trained in %.1fs; software "
              "accuracy %.3f\n",
              clock.seconds(), software);

  // Calibrated device: within the horizon nothing should move.
  core::HardwareMlpRunner calibrated(model, reram::DeviceParams{}, 128, 42);
  common::Table t1({"OU", "acc @ t0", "acc @ 3e7 s", "logit dev @ 3e7 s"});
  for (ou::OuConfig ou : {ou::OuConfig{8, 8}, ou::OuConfig{16, 16},
                          ou::OuConfig{32, 32}}) {
    t1.add_row({ou.to_string(),
                common::Table::num(calibrated.accuracy(train, ou, 1.0), 4),
                common::Table::num(calibrated.accuracy(train, ou, 3e7), 4),
                common::Table::num(
                    logit_deviation(calibrated, train, ou, 3e7), 4)});
  }
  common::print_table(
      "calibrated drift (v = 0.00213): stable across the horizon", t1);

  // Paper-printed drift (v = 0.2) with per-cell variation: fidelity decays
  // and a reprogram restores it.
  reram::DeviceParams fast;
  fast.drift_coefficient = reram::DeviceParams::paper_drift_coefficient;
  core::HardwareMlpRunner fragile(model, fast, 128, 42);
  common::Table t2({"t (s)", "accuracy", "logit deviation"});
  for (double t : {1.0, 1e2, 1e4, 1e6, 1e8})
    t2.add_row({common::Table::num(t, 3),
                common::Table::num(fragile.accuracy(train, {16, 16}, t), 4),
                common::Table::num(
                    logit_deviation(fragile, train, {16, 16}, t), 4)});
  fragile.program(1e8);
  t2.add_row({"1e8 + reprogram",
              common::Table::num(fragile.accuracy(train, {16, 16}, 1e8 + 1),
                                 4),
              common::Table::num(
                  logit_deviation(fragile, train, {16, 16}, 1e8 + 1), 4)});
  common::print_table(
      "paper-printed drift (v = 0.2) + per-cell variation, 16x16 OU", t2);

  std::printf("\n[shape] within the calibrated horizon the datapath is "
              "stable (the surrogate's no-loss-within-budget region); under "
              "fast drift fidelity decays with time and reprogramming "
              "restores it — Fig. 7's mechanics at circuit level. "
              "(%.1fs)\n",
              clock.seconds());
  return 0;
}
