// Ablation — policy representation: the paper's NN policy vs the stored
// lookup table it rejects in Sec. III-A ("not scalable to store optimized
// OU configurations..."). Both are trained on offline labels from the
// non-VGG families and evaluated on the *unseen* VGG workloads' labels, at
// growing example budgets.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/table_policy.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: NN policy vs stored lookup table");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);

  bench::Stopwatch clock;
  // Known (training) families and the unseen (evaluation) family.
  std::vector<std::unique_ptr<ou::MappedModel>> known, unseen;
  for (dnn::DnnModel& model : dnn::paper_workloads()) {
    auto mapped = std::make_unique<ou::MappedModel>(
        setup.make_mapped(std::move(model)));
    (mapped->model().family == dnn::Family::kVgg ? unseen : known)
        .push_back(std::move(mapped));
  }
  std::vector<const ou::MappedModel*> known_ptrs, unseen_ptrs;
  for (const auto& m : known) known_ptrs.push_back(m.get());
  for (const auto& m : unseen) unseen_ptrs.push_back(m.get());

  policy::OfflineTrainConfig eval_cfg;
  eval_cfg.max_examples = 100000;  // full label set for evaluation
  const nn::Dataset heldout = policy::build_offline_dataset(
      unseen_ptrs, nonideal, cost, grid, eval_cfg);
  std::printf("[setup] %zu held-out VGG labels built in %.1fs\n",
              heldout.size(), clock.seconds());

  common::Table table({"examples", "NN exact-match %", "NN storage (B)",
                       "table exact-match %", "table storage (B)"});
  for (std::size_t budget : {50u, 125u, 250u, 500u, 1000u}) {
    policy::OfflineTrainConfig cfg;
    cfg.max_examples = budget;
    const nn::Dataset train = policy::build_offline_dataset(
        known_ptrs, nonideal, cost, grid, cfg);

    policy::OuPolicy nn_policy(grid);
    nn::TrainOptions opt = cfg.train_options;
    nn_policy.train(train, opt);
    const double nn_acc =
        nn::exact_match_accuracy(nn_policy.mlp(), heldout);

    policy::TablePolicy table_policy(grid, budget);
    table_policy.add_dataset(train);
    const double table_acc = table_policy.accuracy_on(heldout);

    table.add_row(
        {common::Table::integer(static_cast<long long>(budget)),
         common::Table::num(100.0 * nn_acc, 4),
         common::Table::integer(
             static_cast<long long>(nn_policy.parameter_count() * 4)),
         common::Table::num(100.0 * table_acc, 4),
         common::Table::integer(
             static_cast<long long>(table_policy.storage_bytes()))});
  }
  common::print_table(
      "generalization to unseen VGG labels (train: other families)", table);
  std::printf("\n[shape] measured honestly, the nearest-neighbour table is "
              "competitive per example — but only by growing without bound: "
              "matching the NN's fixed ~1.1 KB caps it at ~225 entries, and "
              "an online stream of drift-shifting labels keeps evicting what "
              "it learned (ring-buffer forgetting), while the NN compresses "
              "an unbounded stream into the same constant storage. That "
              "constant-memory-under-unbounded-adaptation property is the "
              "substance of Sec. III-A's scalability argument. (%.1fs)\n",
              clock.seconds());
  return 0;
}
