// Extension — cross-mesh failover campaign: mesh-loss fault domains,
// replicated checkpoints and bounded-RTO tenant evacuation (core/cluster).
//
// One seeded scenario drives a multi-mesh cluster (three meshes, each a
// sharded fleet running the identical campaign analytics) into a
// whole-mesh outage that opens mid-campaign, while a correlated fault
// storm is still active on the fleet. Three arms run over the identical
// trace:
//
//  * failover on — tenant state replicates to a peer mesh at an epoch
//    cadence; when the mesh dies, its tenants are restored from the
//    freshest surviving replica onto the least-loaded surviving meshes
//    under degraded admission (breakers pre-opened, destination arrays
//    re-bootstrapped), and per-tenant RTO/RPO is reported;
//  * failover off — the same outage with nobody evacuating: the dark
//    mesh's arrivals are dropped for the whole window (the unbounded-loss
//    baseline);
//  * crash/resume — the failover-on campaign killed mid-failover
//    (max_requests) with periodic v7 checkpoints, then resumed.
//
// The headline claims this bench exists to pin (BENCH_cluster.json):
//  * recovery — failover serves >= 95% of post-outage victim-tenant
//    arrivals, vs the unbounded drop of the failover-off arm;
//  * bounded RTO — every evacuation completes within the reported
//    detection + serialized-restore budget (rto_max_s);
//  * determinism — same-seed replay and the mid-failover resume are
//    byte-identical to the uninterrupted run.
// The bench exits nonzero if any of those fail, so a regression in the
// failover path fails the harness.
//
// --smoke shrinks the horizon for CI; --requests/--tenants override the
// campaign size; --json PATH writes the summary (BENCH_cluster.json);
// --build-type and --git-sha stamp provenance (tools/run_bench.sh).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/cluster.hpp"

using namespace odin;

namespace {

/// Minimal JSON string escape for the summary blob (it contains newlines).
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\n')
      out += "\\n";
    else if (c == '"' || c == '\\')
      (out += '\\') += c;
    else
      out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* build_type = "unknown";
  const char* git_sha = "unknown";
  long long requests = 600'000;
  int tenants = 300;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--build-type") == 0) build_type = argv[i + 1];
    if (std::strcmp(argv[i], "--git-sha") == 0) git_sha = argv[i + 1];
    if (std::strcmp(argv[i], "--requests") == 0)
      requests = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--tenants") == 0)
      tenants = std::atoi(argv[i + 1]);
  }
  if (smoke) {
    requests = 30'000;
    tenants = 120;
  }

  bench::banner(
      "Extension: cross-mesh failover (mesh-loss domains + replicated "
      "checkpoints)");

  core::ClusterConfig cfg;
  cfg.campaign.scenario.seed = 1;
  cfg.campaign.scenario.tenants = tenants;
  cfg.campaign.scenario.requests = requests;
  // A wide storm spanning [0.45, 0.80] of the horizon so the mesh loss at
  // 0.55 provably opens while the fleet is mid-storm.
  core::FaultStorm storm;
  storm.start_frac = 0.45;
  storm.duration_frac = 0.35;
  storm.drift_multiplier = 3.0;
  storm.radius = 1;
  storm.campaigns = 4;
  cfg.campaign.scenario.storms = {storm};
  cfg.campaign.shards = 4;  // per mesh: 3 meshes x 4 shards = 12 shards
  cfg.campaign.epochs = 48;
  cfg.campaign.sojourn_cap = 64;  // bounded memory at campaign scale
  cfg.campaign.autoscale.enabled = 1;
  cfg.meshes = 3;
  cfg.replication_epochs = 4;
  cfg.failover.enabled = 1;
  // One pinned mesh-loss window: mesh 0 dies at 55% of the horizon and
  // stays dark for 40% of it — long enough that the failover-off arm's
  // loss is unbounded by any recovery, not a brief blip.
  core::MeshOutage outage;
  outage.start_frac = 0.55;
  outage.duration_frac = 0.40;
  outage.mesh = 0;
  cfg.outages = {outage};

  std::printf(
      "[setup] %lld requests, %d tenants, %d meshes x %d shards, %d epochs, "
      "replication every %d epochs, outage mesh %d at %.0f%%+%.0f%% of "
      "horizon\n",
      requests, tenants, cfg.meshes, cfg.campaign.shards, cfg.campaign.epochs,
      cfg.replication_epochs, outage.mesh, 100.0 * outage.start_frac,
      100.0 * outage.duration_frac);

  // Arm 1+2: failover on, run twice — the determinism pin.
  bench::Stopwatch clock_on;
  const core::ClusterResult on = core::run_cluster(cfg);
  const double wall_on = clock_on.seconds();
  const core::ClusterResult replay = core::run_cluster(cfg);
  const std::string summary_on = on.summary();
  const bool deterministic = summary_on == replay.summary();
  std::printf("[failover-on] %.1fs; same-seed replay byte-identical: %s\n",
              wall_on, deterministic ? "yes" : "NO");

  // Arm 3: the identical outage with failover off — unbounded loss.
  core::ClusterConfig off_cfg = cfg;
  off_cfg.failover.enabled = 0;
  bench::Stopwatch clock_off;
  const core::ClusterResult off = core::run_cluster(off_cfg);
  const double wall_off = clock_off.seconds();
  std::printf("[failover-off] %.1fs\n", wall_off);

  // Arm 4: kill the failover-on campaign mid-failover, resume from the v7
  // checkpoint pair, and demand the final summary match arm 1 bitwise.
  core::ClusterConfig crash_cfg = cfg;
  crash_cfg.campaign.checkpoint.base_path = "cluster_failover_ckpt";
  crash_cfg.campaign.checkpoint.every_runs =
      static_cast<int>(std::max<long long>(1, requests / 16));
  crash_cfg.campaign.max_requests = (requests * 7) / 10;
  bench::Stopwatch clock_r;
  const core::ClusterResult interrupted = core::run_cluster(crash_cfg);
  const double cut_frac =
      interrupted.campaign.state.clock_s / cfg.campaign.scenario.horizon_s;
  const bool mid_outage =
      interrupted.cluster.outages_fired >= 1 &&
      cut_frac >= outage.start_frac &&
      cut_frac < outage.start_frac + outage.duration_frac;
  const auto resumed = core::resume_cluster(crash_cfg);
  const double wall_resume = clock_r.seconds();
  std::remove("cluster_failover_ckpt.a");
  std::remove("cluster_failover_ckpt.b");
  if (!resumed.has_value()) {
    std::fprintf(stderr, "error: resume_cluster refused its own pair\n");
    return 1;
  }
  const bool resume_bitwise = resumed->summary() == summary_on;
  std::printf(
      "[crash/resume] killed at %lld/%lld requests (t = %.0f s, %.0f%% of "
      "horizon, %s the outage window, %d outage(s) fired); resumed summary "
      "byte-identical: %s (%.1fs)\n",
      static_cast<long long>(interrupted.campaign.requests()), requests,
      interrupted.campaign.state.clock_s, 100.0 * cut_frac,
      mid_outage ? "inside" : "OUTSIDE", interrupted.cluster.outages_fired,
      resume_bitwise ? "yes" : "NO", wall_resume);

  auto row = [](const char* label, const core::ClusterResult& r,
                double wall_s) {
    return std::vector<std::string>{
        label,
        common::Table::integer(r.campaign.requests()),
        common::Table::integer(r.cluster.failovers),
        common::Table::integer(r.cluster.outage_dropped),
        common::Table::integer(r.cluster.lost_runs),
        common::Table::num(r.victim_recovery(), 4),
        common::Table::num(r.rto_mean_s(), 2),
        common::Table::num(r.cluster.rto_max_s, 2),
        common::Table::num(r.rpo_mean_s(), 1),
        common::Table::num(wall_s, 2)};
  };
  common::Table table({"arm", "requests", "failovers", "dropped",
                       "lost runs", "victim recovery", "RTO mean (s)",
                       "RTO max (s)", "RPO mean (s)", "wall (s)"});
  table.add_row(row("failover-on", on, wall_on));
  table.add_row(row("failover-off", off, wall_off));
  common::print_table("mesh-loss arms over the identical seeded trace",
                      table);

  const double recovery_on = on.victim_recovery();
  const double recovery_off = off.victim_recovery();
  const bool recovered = recovery_on >= 0.95 && recovery_on > recovery_off;
  std::printf(
      "\n[headline] victim-tenant recovery: failover %.4f vs unbounded loss "
      "%.4f (%lld evacuations, RTO max %.1f s, RPO max %.1f s, %lld stale "
      "restores); recovery %s, deterministic replay %s, mid-failover resume "
      "%s\n",
      recovery_on, recovery_off,
      static_cast<long long>(on.cluster.failovers), on.cluster.rto_max_s,
      on.cluster.rpo_max_s, static_cast<long long>(on.cluster.restored_stale),
      recovered ? "PASS" : "FAIL", deterministic ? "PASS" : "FAIL",
      resume_bitwise ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"build_type\": \"%s\",\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"note\": \"cross-mesh failover campaign: 3 meshes, pinned "
        "mesh-0 outage opening mid-storm; checkpoint replication to a peer "
        "mesh every %d epochs; failover-on vs failover-off over the "
        "identical trace; crash mid-failover + v7 checkpoint resume\",\n"
        "  \"requests\": %lld,\n"
        "  \"tenants\": %d,\n"
        "  \"meshes\": %d,\n"
        "  \"shards_per_mesh\": %d,\n"
        "  \"epochs\": %d,\n"
        "  \"replication_epochs\": %d,\n"
        "  \"seed\": %llu,\n"
        "  \"outage\": {\"mesh\": %d, \"start_frac\": %.17g, "
        "\"duration_frac\": %.17g},\n",
        build_type, git_sha, on.replication_epochs, requests, tenants,
        on.meshes, on.shards_per_mesh, cfg.campaign.epochs,
        on.replication_epochs,
        static_cast<unsigned long long>(on.campaign.scenario.seed),
        outage.mesh, outage.start_frac, outage.duration_frac);
    auto arm_json = [&](const char* key, const core::ClusterResult& r,
                        double wall_s) {
      std::fprintf(
          f,
          "  \"%s\": {\"requests\": %lld, \"failovers\": %lld, "
          "\"restored_stale\": %lld, \"lost_runs\": %lld, "
          "\"outage_dropped\": %lld, \"degraded_runs\": %lld, "
          "\"bootstrap_campaigns\": %lld, \"victim_offered\": %lld, "
          "\"victim_served\": %lld, \"victim_recovery\": %.17g, "
          "\"rto_mean_s\": %.17g, \"rto_max_s\": %.17g, "
          "\"rpo_mean_s\": %.17g, \"rpo_max_s\": %.17g, "
          "\"replication_rounds\": %d, \"replication_bytes\": %.17g, "
          "\"replication_s\": %.17g, \"replication_energy_j\": %.17g, "
          "\"p99_slack_s\": %.17g, \"edp_per_request_js\": %.17g, "
          "\"bench_wall_s\": %.3f},\n",
          key, static_cast<long long>(r.campaign.requests()),
          static_cast<long long>(r.cluster.failovers),
          static_cast<long long>(r.cluster.restored_stale),
          static_cast<long long>(r.cluster.lost_runs),
          static_cast<long long>(r.cluster.outage_dropped),
          static_cast<long long>(r.cluster.degraded_runs),
          static_cast<long long>(r.cluster.bootstrap_campaigns),
          static_cast<long long>(r.cluster.victim_offered),
          static_cast<long long>(r.cluster.victim_served),
          r.victim_recovery(), r.rto_mean_s(), r.cluster.rto_max_s,
          r.rpo_mean_s(), r.cluster.rpo_max_s,
          static_cast<int>(r.cluster.replication_rounds),
          r.cluster.replication_bytes, r.cluster.replication_s,
          r.cluster.replication_energy_j, r.campaign.p99_slack_s(),
          r.campaign.edp_per_request(), wall_s);
    };
    arm_json("failover_on", on, wall_on);
    arm_json("failover_off", off, wall_off);
    std::fprintf(f,
                 "  \"headline\": {\n"
                 "    \"victim_recovery_on\": %.17g,\n"
                 "    \"victim_recovery_off\": %.17g,\n"
                 "    \"recovery_pass\": %s,\n"
                 "    \"deterministic_replay\": %s,\n"
                 "    \"mid_failover_crash\": %s,\n"
                 "    \"resume_bitwise_identical\": %s\n"
                 "  },\n"
                 "  \"summary\": \"%s\"\n"
                 "}\n",
                 recovery_on, recovery_off, recovered ? "true" : "false",
                 deterministic ? "true" : "false",
                 mid_outage ? "true" : "false",
                 resume_bitwise ? "true" : "false",
                 escape(on.summary(false)).c_str());
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return deterministic && resume_bitwise && recovered ? 0 : 1;
}
