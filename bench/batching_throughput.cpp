// Extension — batched MVM throughput, kernel to serving.
//
// Three sections, one bench:
//  1. Kernel sweep — batch size x OU shape through one 128x128 crossbar:
//     "old" is the pre-batching steady state (one span mvm per image),
//     "new" is the batched plane-kernel GEMM (reram/batch_gemm.hpp, SIMD
//     across queries). Both paths are verified bitwise identical before
//     timing; the table reports images/s and the old-vs-new speedup.
//  2. Pipelined model table — OU sizing changes not just per-image EDP but
//     which layer bottlenecks the inter-layer pipeline. Odin's layer-wise
//     choices balance the pipeline better than any homogeneous config.
//  3. Serving arm — the overloaded resilience walk with deadline-aware
//     batch formation off vs on: one controller search + one pipelined
//     pass per batch drains the backlog faster at the same arrival log.
//
// --json PATH writes the summary (BENCH_batching.json); --build-type and
// --git-sha stamp provenance into it (tools/run_bench.sh passes both).
#include <bit>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/batching.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/serving.hpp"
#include "reram/batch_gemm.hpp"
#include "reram/crossbar.hpp"

using namespace odin;

namespace {

constexpr int kXbar = 128;
constexpr int kAdcBits = 6;

struct KernelArm {
  int ou_rows = 0;
  int ou_cols = 0;
  int batch = 0;
  double single_ips = 0.0;
  double batched_ips = 0.0;
  double speedup = 0.0;
};

std::vector<double> random_panel(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform();
  return v;
}

/// Run `pass` (which serves `images_per_pass` images) repeatedly until
/// ~0.15 s of wall clock has accumulated; returns images/s.
template <typename Fn>
double measure_ips(int images_per_pass, Fn&& pass) {
  pass();  // warm planes, pool and scratch outside the timed window
  long images = 0;
  bench::Stopwatch clock;
  double elapsed = 0.0;
  do {
    pass();
    images += images_per_pass;
    elapsed = clock.seconds();
  } while (elapsed < 0.15);
  return static_cast<double>(images) / elapsed;
}

std::vector<double> pooled_sojourns(const core::ServingResult& r) {
  std::vector<double> all;
  for (const auto& t : r.tenants)
    all.insert(all.end(), t.sojourn_s.begin(), t.sojourn_s.end());
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* build_type = "unknown";
  const char* git_sha = "unknown";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--build-type") == 0) build_type = argv[i + 1];
    if (std::strcmp(argv[i], "--git-sha") == 0) git_sha = argv[i + 1];
  }

  bench::banner("Extension: batched MVM throughput (kernel to serving)");

  // ---- 1. kernel sweep: batch size x OU shape -------------------------
  reram::Crossbar xbar(kXbar, reram::DeviceParams{}, std::nullopt,
                       reram::IrModel::kSpatial);
  xbar.program(random_panel(9, static_cast<std::size_t>(kXbar) * kXbar),
               kXbar, kXbar, 0.0);
  const char* simd =
      reram::gemm::simd_mode_name(reram::gemm::active_simd_mode());
  std::printf("[setup] 128x128 crossbar, spatial IR, ADC %d bits, SIMD "
              "dispatch: %s\n",
              kAdcBits, simd);

  struct OuShape {
    int rows, cols;
  };
  const OuShape shapes[] = {{8, 4}, {16, 16}, {32, 32}, {64, 64}};
  const int batches[] = {1, 2, 4, 8, 16, 32};
  const double t_s = 2.0;

  std::vector<KernelArm> kernel_arms;
  common::Table kernel_table({"OU", "batch", "old 1-query (img/s)",
                              "new batched (img/s)", "speedup"});
  for (const OuShape& ou : shapes) {
    for (int batch : batches) {
      const auto panel = random_panel(
          17, static_cast<std::size_t>(batch) * kXbar);
      std::vector<double> got(static_cast<std::size_t>(batch) * kXbar);
      std::vector<double> want(got.size());
      // Bitwise pin before timing: the batched pass must reproduce the
      // sequential per-query pass exactly.
      xbar.mvm(panel, batch, kXbar, ou.rows, ou.cols, t_s, kAdcBits, got,
               kXbar);
      for (int b = 0; b < batch; ++b)
        xbar.mvm(std::span<const double>(panel).subspan(
                     static_cast<std::size_t>(b) * kXbar, kXbar),
                 ou.rows, ou.cols, t_s, kAdcBits,
                 std::span<double>(want).subspan(
                     static_cast<std::size_t>(b) * kXbar, kXbar));
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (std::bit_cast<std::uint64_t>(got[i]) !=
            std::bit_cast<std::uint64_t>(want[i])) {
          std::fprintf(stderr,
                       "error: batched kernel diverges from sequential at "
                       "OU %dx%d batch %d index %zu\n",
                       ou.rows, ou.cols, batch, i);
          return 1;
        }
      }

      KernelArm arm;
      arm.ou_rows = ou.rows;
      arm.ou_cols = ou.cols;
      arm.batch = batch;
      arm.single_ips = measure_ips(batch, [&] {
        for (int b = 0; b < batch; ++b)
          xbar.mvm(std::span<const double>(panel).subspan(
                       static_cast<std::size_t>(b) * kXbar, kXbar),
                   ou.rows, ou.cols, t_s, kAdcBits,
                   std::span<double>(want).subspan(
                       static_cast<std::size_t>(b) * kXbar, kXbar));
      });
      arm.batched_ips = measure_ips(batch, [&] {
        xbar.mvm(panel, batch, kXbar, ou.rows, ou.cols, t_s, kAdcBits, got,
                 kXbar);
      });
      arm.speedup =
          arm.single_ips > 0.0 ? arm.batched_ips / arm.single_ips : 0.0;
      kernel_arms.push_back(arm);
      kernel_table.add_row(
          {std::to_string(ou.rows) + "x" + std::to_string(ou.cols),
           common::Table::integer(batch),
           common::Table::num(arm.single_ips, 4),
           common::Table::num(arm.batched_ips, 4),
           common::Table::num(arm.speedup, 3)});
    }
  }
  common::print_table(
      "kernel sweep: full 128x128 MVM per image, batched GEMM vs repeated "
      "single-query (bitwise-identical outputs)",
      kernel_table);

  // ---- 2. pipelined model-level table ---------------------------------
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  bench::Stopwatch map_clock;
  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  std::printf("[setup] ResNet18 mapped in %.1fs\n", map_clock.seconds());

  core::OdinController controller(resnet18, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)),
                                  core::OdinConfig{
                                      .search = core::SearchKind::kExhaustive});
  const auto run = controller.run_inference(1.0);
  std::vector<ou::OuConfig> odin_configs;
  for (const auto& d : run.decisions) odin_configs.push_back(d.executed);

  constexpr int kBatch = 64;
  struct PipelineArm {
    std::string scheme;
    arch::BatchCost cost;
  };
  std::vector<PipelineArm> pipeline_arms;
  common::Table table({"scheme", "throughput (img/s)",
                       "bottleneck layer", "batch-64 latency (s)",
                       "batch-64 energy (mJ)"});
  auto add_row = [&](const std::string& label,
                     const arch::BatchCost& batch) {
    pipeline_arms.push_back({label, batch});
    table.add_row(
        {label, common::Table::num(batch.throughput_ips, 4),
         resnet18.model().layers[static_cast<std::size_t>(
                                     batch.bottleneck_layer)]
             .name,
         common::Table::num(batch.total.latency_s, 4),
         common::Table::num(batch.total.energy_j * 1e3, 4)});
  };
  for (ou::OuConfig cfg : core::paper_baseline_configs())
    add_row(cfg.to_string(),
            arch::batched_inference_cost(resnet18, cfg, cost, kBatch));
  add_row("Odin (t0 layer-wise)",
          arch::batched_inference_cost(resnet18, odin_configs, cost,
                                       kBatch));
  common::print_table("ResNet18/CIFAR-10, batch = 64, weights resident",
                      table);

  // ---- 3. serving arm: batch formation off vs on ----------------------
  core::ServingConfig serving;
  serving.horizon = core::HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                        .runs = 120};
  serving.segments = 2;
  serving.resilience.enabled = true;
  serving.resilience.queue_capacity = 1'000;
  serving.resilience.shed = core::ShedPolicy::kBlock;
  serving.resilience.search_eval_cost_s = 0.5;  // overload the early runs
  serving.resilience.breaker.failure_threshold = 1'000'000;

  const std::vector<const ou::MappedModel*> tenants{&resnet18};
  const auto plain = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)),
      serving);
  core::ServingConfig batched_cfg = serving;
  batched_cfg.resilience.batching.enabled = true;
  batched_cfg.resilience.batching.max_batch = 8;
  const auto batched = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)),
      batched_cfg);

  const double p99_plain = core::percentile(pooled_sojourns(plain), 99.0);
  const double p99_batched =
      core::percentile(pooled_sojourns(batched), 99.0);
  common::Table serving_table({"arm", "p99 sojourn (s)", "batches",
                               "mean occupancy", "max batch"});
  serving_table.add_row({"batching off", common::Table::num(p99_plain, 4),
                         common::Table::integer(0), "-", "-"});
  serving_table.add_row(
      {"batching on (cap 8)", common::Table::num(p99_batched, 4),
       common::Table::integer(batched.total_batches_formed()),
       common::Table::num(batched.mean_batch_occupancy(), 3),
       common::Table::integer(batched.max_batch())});
  common::print_table(
      "overloaded serving walk (120 runs, per-eval cost 0.5 s): "
      "deadline-aware batch formation",
      serving_table);

  std::printf("\n[shape] the batched kernel wins by vectorizing across "
              "queries (the per-query dot product has a serial reduction "
              "the compiler cannot vectorize) and by walking the weight "
              "plane once per batch; in serving, one search per batch plus "
              "a pipelined pass drains an overloaded queue faster than "
              "one full serve per arrival.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"build_type\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"simd_mode\": \"%s\",\n"
                 "  \"note\": \"old = repeated single-query span mvm, new = "
                 "batched plane-kernel GEMM; bitwise-identical outputs; "
                 "128x128 crossbar, spatial IR\",\n"
                 "  \"kernel_sweep\": [\n",
                 build_type, git_sha, simd);
    for (std::size_t i = 0; i < kernel_arms.size(); ++i) {
      const KernelArm& a = kernel_arms[i];
      std::fprintf(f,
                   "    {\"ou\": \"%dx%d\", \"batch\": %d, "
                   "\"old_images_per_s\": %.4e, \"new_images_per_s\": "
                   "%.4e, \"speedup\": %.3f}%s\n",
                   a.ou_rows, a.ou_cols, a.batch, a.single_ips,
                   a.batched_ips, a.speedup,
                   i + 1 < kernel_arms.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"pipeline_batch64\": [\n");
    for (std::size_t i = 0; i < pipeline_arms.size(); ++i) {
      const PipelineArm& a = pipeline_arms[i];
      std::fprintf(f,
                   "    {\"scheme\": \"%s\", \"throughput_ips\": %.4e, "
                   "\"latency_s\": %.4e, \"energy_j\": %.4e}%s\n",
                   a.scheme.c_str(), a.cost.throughput_ips,
                   a.cost.total.latency_s, a.cost.total.energy_j,
                   i + 1 < pipeline_arms.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"serving\": {\n"
                 "    \"horizon_runs\": %d,\n"
                 "    \"batch_cap\": 8,\n"
                 "    \"p99_sojourn_plain_s\": %.6e,\n"
                 "    \"p99_sojourn_batched_s\": %.6e,\n"
                 "    \"batches_formed\": %d,\n"
                 "    \"batch_members\": %d,\n"
                 "    \"mean_occupancy\": %.3f,\n"
                 "    \"max_batch\": %d\n"
                 "  }\n"
                 "}\n",
                 serving.horizon.runs, p99_plain, p99_batched,
                 batched.total_batches_formed(),
                 batched.total_batch_members(),
                 batched.mean_batch_occupancy(), batched.max_batch());
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return 0;
}
