// Extension — batched throughput under inter-layer pipelining: OU sizing
// changes not just per-image EDP but which layer bottlenecks the pipeline.
// Odin's layer-wise choices balance the pipeline better than any
// homogeneous configuration.
#include <cstdio>

#include "arch/batching.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Extension: batched inference throughput (pipelined)");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));

  // Odin's layer-wise choices at t0 (exhaustive = converged policy).
  core::OdinController controller(resnet18, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)),
                                  core::OdinConfig{
                                      .search = core::SearchKind::kExhaustive});
  const auto run = controller.run_inference(1.0);
  std::vector<ou::OuConfig> odin_configs;
  for (const auto& d : run.decisions) odin_configs.push_back(d.executed);

  constexpr int kBatch = 64;
  common::Table table({"scheme", "throughput (img/s)",
                       "bottleneck layer", "batch-64 latency (s)",
                       "batch-64 energy (mJ)"});
  auto add_row = [&](const std::string& label,
                     const arch::BatchCost& batch) {
    table.add_row(
        {label, common::Table::num(batch.throughput_ips, 4),
         resnet18.model().layers[static_cast<std::size_t>(
                                     batch.bottleneck_layer)]
             .name,
         common::Table::num(batch.total.latency_s, 4),
         common::Table::num(batch.total.energy_j * 1e3, 4)});
  };
  for (ou::OuConfig cfg : core::paper_baseline_configs())
    add_row(cfg.to_string(),
            arch::batched_inference_cost(resnet18, cfg, cost, kBatch));
  add_row("Odin (t0 layer-wise)",
          arch::batched_inference_cost(resnet18, odin_configs, cost,
                                       kBatch));
  common::print_table("ResNet18/CIFAR-10, batch = 64, weights resident",
                      table);
  std::printf("\n[shape] the pipeline bottleneck is the large early conv in "
              "every scheme. Fine homogeneous OUs (8x4) throttle it to ~0.4x "
              "of 16x16's throughput; Odin gives up only ~12%% vs 16x16 — "
              "the cost of the accuracy-protecting fine OUs on exactly the "
              "bottleneck (sensitive, early) layers, which the 16x16 "
              "baseline ignores at the price of early-layer IR-drop error."
              "\n");
  return 0;
}
