// Fig. 9 — EDP of the homogeneous OU configurations normalized to Odin as
// the crossbar size sweeps over 128x128, 64x64 and 32x32, for ResNet34 on
// CIFAR-100.
//
// Paper Sec. V-D: Odin reduces EDP by up to 8.5x / 8.7x / 6.2x at the three
// sizes; shrinking the crossbar reduces non-idealities and the need for
// reprogramming, but Odin stays ahead everywhere.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Fig. 9: EDP vs crossbar size, ResNet34/CIFAR-100");
  const core::Setup setup = bench::default_setup();
  const ou::OuCostModel cost = setup.make_cost();
  const arch::SystemModel system = setup.make_system();
  const arch::OverheadModel overhead = setup.make_overhead();
  const core::HorizonConfig horizon{};
  const auto baselines = core::paper_baseline_configs();

  common::Table table({"crossbar", "16x16", "16x4", "9x8", "8x4",
                       "max reduction", "Odin reprograms"});
  bench::Stopwatch clock;
  for (int crossbar : {128, 64, 32}) {
    // Eq. 4's wire length scales with the crossbar dimension: smaller
    // arrays suffer less IR drop and reprogram less often (Sec. V-D).
    const ou::NonIdealityModel nonideal = setup.make_nonideality(crossbar);
    const ou::MappedModel resnet34 = setup.make_mapped(
        dnn::make_resnet34(data::DatasetKind::kCifar100), crossbar);
    const auto noc = system.map(resnet34.model(), crossbar).noc_per_inference;

    policy::OuPolicy offline = core::offline_policy_excluding(
        setup, dnn::Family::kResNet, crossbar);
    core::OdinController controller(resnet34, nonideal, cost,
                                    std::move(offline));
    const auto odin =
        core::simulate_odin(controller, horizon, noc, &overhead);

    std::vector<std::string> row{std::to_string(crossbar) + "x" +
                                 std::to_string(crossbar)};
    double max_reduction = 0.0;
    for (const ou::OuConfig cfg : baselines) {
      const auto base = core::simulate_homogeneous(resnet34, nonideal, cost,
                                                   cfg, horizon, noc);
      const double reduction = base.total_edp() / odin.total_edp();
      max_reduction = std::max(max_reduction, reduction);
      row.push_back(common::Table::num(reduction, 3));
    }
    row.push_back(common::Table::num(max_reduction, 3));
    row.push_back(common::Table::integer(odin.reprograms));
    table.add_row(std::move(row));
    std::printf("[run] crossbar %d done (%.1fs)\n", crossbar,
                clock.seconds());
  }
  common::print_table(
      "Fig. 9: baseline EDP / Odin EDP per crossbar size "
      "(paper max: 8.5 / 8.7 / 6.2)",
      table);
  return 0;
}
