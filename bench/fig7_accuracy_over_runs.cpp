// Fig. 7 — Inference accuracy over the inference runs for VGG11 (CIFAR-10)
// with homogeneous OUs (with and without reprogramming) and Odin.
//
// Paper Sec. V-C: without reprogramming, 16x16 loses ~22% accuracy by the
// end of the horizon; with reprogramming (or with Odin) accuracy stays at
// the ideal level throughout.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/accuracy.hpp"

using namespace odin;

int main() {
  bench::banner("Fig. 7: accuracy over inference runs, VGG11/CIFAR-10");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const core::AccuracyModel accuracy{core::AccuracyParams{}};

  bench::Stopwatch clock;
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  std::printf("[setup] done in %.1fs\n", clock.seconds());

  core::OdinController odin(vgg11, nonideal, cost, std::move(offline));
  core::HomogeneousRunner h16(vgg11, nonideal, cost, {16, 16}, true);
  core::HomogeneousRunner h16_nr(vgg11, nonideal, cost, {16, 16}, false);
  core::HomogeneousRunner h84(vgg11, nonideal, cost, {8, 4}, true);
  core::HomogeneousRunner h84_nr(vgg11, nonideal, cost, {8, 4}, false);

  const core::HorizonConfig horizon{};
  const auto schedule = core::run_schedule(horizon);
  common::Table table({"run", "t (s)", "16x16", "16x16 no-reprog", "8x4",
                       "8x4 no-reprog", "Odin"});
  double min_odin = 1.0, min_16nr = 1.0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const double t = schedule[i];
    const auto odin_run = odin.run_inference(t);
    std::vector<ou::OuConfig> odin_cfg;
    for (const auto& d : odin_run.decisions) odin_cfg.push_back(d.executed);
    const double a_odin =
        accuracy.estimate(vgg11, odin_cfg, odin_run.elapsed_s, nonideal);
    const double a16 = accuracy.estimate_homogeneous(
        vgg11, {16, 16}, h16.run_inference(t).elapsed_s, nonideal);
    const double a16nr = accuracy.estimate_homogeneous(
        vgg11, {16, 16}, h16_nr.run_inference(t).elapsed_s, nonideal);
    const double a84 = accuracy.estimate_homogeneous(
        vgg11, {8, 4}, h84.run_inference(t).elapsed_s, nonideal);
    const double a84nr = accuracy.estimate_homogeneous(
        vgg11, {8, 4}, h84_nr.run_inference(t).elapsed_s, nonideal);
    min_odin = std::min(min_odin, a_odin);
    min_16nr = std::min(min_16nr, a16nr);
    if (i % 40 == 0 || i + 1 == schedule.size())
      table.add_row({common::Table::integer(static_cast<long long>(i)),
                     common::Table::num(t, 3), common::Table::num(a16, 4),
                     common::Table::num(a16nr, 4), common::Table::num(a84, 4),
                     common::Table::num(a84nr, 4),
                     common::Table::num(a_odin, 4)});
  }
  common::print_table("Fig. 7: accuracy over runs (every 40th run shown)",
                      table);

  const double ideal = accuracy.params().ideal_accuracy;
  std::printf("\n[shape] paper: 16x16 w/o reprogram drops ~22%%; Odin holds "
              "accuracy\n");
  std::printf("[shape] ours : 16x16 w/o reprogram drops %.1f%%; Odin min "
              "accuracy %.4f (ideal %.2f)\n",
              100.0 * (ideal - min_16nr) / ideal, min_odin, ideal);
  std::printf("[counts] 16x16: %d reprograms, 8x4: %d, Odin: %d\n",
              h16.reprogram_count(), h84.reprogram_count(),
              odin.reprogram_count());
  return 0;
}
