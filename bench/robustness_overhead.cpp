// Extension — robustness overhead: what fault-tolerant serving costs.
//
// Three questions, one bench:
//  1. Checkpoint durability cost — wall-clock latency of one crash-safe
//     checkpoint write (encode + CRC + tmp/fsync/rename) and of one
//     restore (read + validate + decode + controller reinstate), plus the
//     on-disk frame size.
//  2. Shadow-evaluation overhead — wall clock of the guarded serving loop
//     vs the vanilla loop on a clean horizon (the guard's holdout split,
//     candidate clone training and layer-set shadow pricing all run inside
//     the retrain path).
//  3. Rollback behaviour under poisoning — the ISSUE's drift-burst
//     campaign: fault-free EDP vs unguarded-poisoned vs guarded-poisoned,
//     with the accept/reject/rollback counters.
//
// --json PATH writes the summary to PATH (BENCH_robustness.json).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"

using namespace odin;

namespace {

constexpr std::uint64_t kSeed = 0x6a1d;

/// The poisoning campaign (kept in sync with tests/test_guardrails.cpp):
/// one intense thermal burst spanning a few runs of the log-spaced
/// horizon — long enough to fill the replay buffer with burst-era labels
/// and trigger a retrain inside the burst, short enough that its direct
/// (guard-independent) reprogramming cost is small against the horizon.
reram::FaultScheduleParams burst_params() {
  reram::FaultScheduleParams p;
  p.bursts = {{.start_s = 1e4, .duration_s = 2e4, .multiplier = 3e2}};
  return p;
}

core::OdinConfig loop_config(bool guard) {
  core::OdinConfig cfg;
  cfg.buffer_capacity = 10;
  cfg.update_options.epochs = 80;
  // Entropy gate on in every arm: a confidently-poisoned policy skips the
  // very searches that would expose (and retrain away) its mispredictions,
  // which is what makes an unguarded poisoned promotion persist.
  cfg.entropy_gate = 0.3;
  cfg.guard.enabled = guard;
  return cfg;
}

struct ArmOutcome {
  std::string label;
  double edp = 0.0;
  double wall_s = 0.0;
  int updates_accepted = 0;
  int updates_rejected = 0;
  int updates_rolled_back = 0;
  long long buffer_quarantined = 0;
};

ArmOutcome run_arm(const char* label, const ou::MappedModel& tenant,
                   const ou::NonIdealityModel& nonideal,
                   const ou::OuCostModel& cost,
                   const core::HorizonConfig& horizon, bool with_faults,
                   bool with_guard) {
  reram::FaultInjector faults(burst_params(), kSeed);
  core::OdinController controller(tenant, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)),
                                  loop_config(with_guard),
                                  with_faults ? &faults : nullptr);
  const bench::Stopwatch clock;
  const auto agg = core::simulate_odin(controller, horizon);
  ArmOutcome out;
  out.label = label;
  out.wall_s = clock.seconds();
  out.edp = agg.total_edp();
  out.updates_accepted = agg.updates_accepted;
  out.updates_rejected = agg.updates_rejected;
  out.updates_rolled_back = agg.updates_rolled_back;
  out.buffer_quarantined = agg.buffer_quarantined;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  bench::banner("Extension: robustness overhead (guard + checkpoint cost)");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));

  // ---- 1. checkpoint write / restore latency --------------------------
  // State worth checkpointing: a controller mid-horizon with a filled
  // buffer and promoted updates, wrapped exactly as the serving loop does.
  core::OdinController donor(vgg11, nonideal, cost,
                             policy::OuPolicy(ou::OuLevelGrid(128)),
                             loop_config(false));
  double t = 1.0;
  for (int i = 0; i < 40; ++i, t *= 1.6) donor.run_inference(t);
  core::ServingCheckpoint ckpt;
  ckpt.segment = 1;
  ckpt.next_run = 40;
  ckpt.segments = 4;
  ckpt.horizon_runs = 160;
  ckpt.t_start_s = 1.0;
  ckpt.t_end_s = 1e8;
  ckpt.tenant_names = {vgg11.model().name};
  ckpt.result.label = "Odin";
  ckpt.result.tenants.resize(1);
  ckpt.result.tenants[0].name = vgg11.model().name;
  ckpt.controller = donor.snapshot();

  const std::string base = "/tmp/odin_bench_ckpt";
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
  constexpr int kCycles = 50;
  core::CheckpointWriter writer(base);
  const bench::Stopwatch write_clock;
  for (int i = 0; i < kCycles; ++i) writer.write(ckpt);
  const double write_ms = write_clock.seconds() * 1e3 / kCycles;

  const bench::Stopwatch load_clock;
  for (int i = 0; i < kCycles; ++i) {
    const auto loaded = core::load_latest_checkpoint(base);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: checkpoint failed to load\n");
      return 1;
    }
  }
  const double load_ms = load_clock.seconds() * 1e3 / kCycles;

  // Restore = load + controller reinstate (decode blobs, rebuild buffer).
  const auto loaded = core::load_latest_checkpoint(base);
  const bench::Stopwatch restore_clock;
  int restored_ok = 0;
  for (int i = 0; i < kCycles; ++i) {
    core::OdinController target(vgg11, nonideal, cost,
                                policy::OuPolicy(ou::OuLevelGrid(128)),
                                loop_config(false));
    restored_ok += target.restore(loaded->controller) ? 1 : 0;
  }
  const double restore_ms = restore_clock.seconds() * 1e3 / kCycles;

  common::ByteWriter frame_probe;
  core::encode_checkpoint(ckpt, frame_probe);
  const std::size_t frame_bytes = frame_probe.bytes().size() + 32;

  common::Table ckpt_table(
      {"operation", "latency (ms)", "notes"});
  char size_note[64];
  std::snprintf(size_note, sizeof(size_note), "frame %zu bytes",
                frame_bytes);
  ckpt_table.add_row({"checkpoint write", common::Table::num(write_ms, 3),
                      size_note});
  ckpt_table.add_row({"checkpoint load", common::Table::num(load_ms, 3),
                      "read + CRC + decode"});
  ckpt_table.add_row({"controller restore", common::Table::num(restore_ms, 3),
                      "reinstate policy + buffer"});
  common::print_table("crash-safe checkpoint cost (VGG11 serving state)",
                      ckpt_table);
  if (restored_ok != kCycles)
    std::fprintf(stderr, "warning: %d/%d restores failed\n",
                 kCycles - restored_ok, kCycles);

  // ---- 2 + 3. guard overhead and the poisoning campaign ---------------
  const core::HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e8,
                                    .runs = 160};
  const ArmOutcome clean =
      run_arm("fault-free (vanilla)", vgg11, nonideal, cost, horizon, false,
              false);
  const ArmOutcome clean_guarded =
      run_arm("fault-free (guarded)", vgg11, nonideal, cost, horizon, false,
              true);
  const ArmOutcome poisoned_unguarded =
      run_arm("drift-burst (unguarded)", vgg11, nonideal, cost, horizon,
              true, false);
  const ArmOutcome poisoned_guarded =
      run_arm("drift-burst (guarded)", vgg11, nonideal, cost, horizon, true,
              true);

  common::Table arm_table({"arm", "EDP (J*s)", "vs fault-free", "wall (s)",
                           "acc/rej/rb", "quarantined"});
  auto add_arm = [&](const ArmOutcome& o) {
    char counters[48], ratio[32];
    std::snprintf(counters, sizeof(counters), "%d/%d/%d",
                  o.updates_accepted, o.updates_rejected,
                  o.updates_rolled_back);
    std::snprintf(ratio, sizeof(ratio), "%.3fx", o.edp / clean.edp);
    arm_table.add_row({o.label, common::Table::num(o.edp, 4), ratio,
                       common::Table::num(o.wall_s, 2), counters,
                       common::Table::integer(o.buffer_quarantined)});
  };
  add_arm(clean);
  add_arm(clean_guarded);
  add_arm(poisoned_unguarded);
  add_arm(poisoned_guarded);
  common::print_table(
      "VGG11/CIFAR-10, 160-run horizon, drift-burst poisoning campaign",
      arm_table);
  std::printf(
      "\n[shape] the burst poisons one retrain batch; unguarded Algorithm 1 "
      "promotes it and serves the rest of the horizon from a bad policy, "
      "while the guard rejects or rolls the promotion back (quarantining "
      "the batch) and stays within a few percent of the fault-free walk. "
      "The guard's shadow evaluation costs wall clock only at retrain "
      "boundaries.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    const reram::FaultScheduleParams sched = burst_params();
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"VGG11/CIFAR-10\",\n"
                 "  \"horizon_runs\": %d,\n"
                 "  \"burst\": {\"start_s\": %.2e, \"duration_s\": %.2e, "
                 "\"multiplier\": %.1f},\n"
                 "  \"checkpoint\": {\n"
                 "    \"frame_bytes\": %zu,\n"
                 "    \"write_ms\": %.4f,\n"
                 "    \"load_ms\": %.4f,\n"
                 "    \"controller_restore_ms\": %.4f\n"
                 "  },\n"
                 "  \"guard_wall_overhead\": %.4f,\n"
                 "  \"arms\": [\n",
                 horizon.runs, sched.bursts[0].start_s,
                 sched.bursts[0].duration_s, sched.bursts[0].multiplier,
                 frame_bytes, write_ms, load_ms, restore_ms,
                 clean.wall_s > 0.0 ? clean_guarded.wall_s / clean.wall_s
                                    : 0.0);
    const ArmOutcome* arms[] = {&clean, &clean_guarded, &poisoned_unguarded,
                                &poisoned_guarded};
    for (std::size_t i = 0; i < 4; ++i) {
      const ArmOutcome& o = *arms[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"edp\": %.6e, "
                   "\"edp_vs_fault_free\": %.4f, \"wall_s\": %.3f, "
                   "\"updates_accepted\": %d, \"updates_rejected\": %d, "
                   "\"updates_rolled_back\": %d, "
                   "\"buffer_quarantined\": %lld}%s\n",
                   o.label.c_str(), o.edp, o.edp / clean.edp, o.wall_s,
                   o.updates_accepted, o.updates_rejected,
                   o.updates_rolled_back, o.buffer_quarantined,
                   i + 1 < 4 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  std::remove((base + ".a").c_str());
  std::remove((base + ".b").c_str());
  return 0;
}
