// Ablation — index-storage cost of stored-table OU compression (paper
// Sec. II's argument for Odin's virtual-OU controller).
//
// Prior OU schemes pre-compute input/output index tables per configuration.
// A fixed homogeneous OU needs one table set; a drift-adaptive scheme that
// stored tables would need them for every configuration it ever visits.
// Odin forms OUs in the controller at runtime: zero tables, 0.005 mm^2 of
// logic (Sec. V-E).
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ou/compression.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: OU index storage — stored tables vs Odin");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const ou::IndexStorageModel storage(vgg11.crossbar_size());

  common::Table table({"scheme", "configs tracked", "index storage (KB)"});
  for (ou::OuConfig cfg : core::paper_baseline_configs()) {
    const double kb =
        static_cast<double>(storage.model_index_bits(vgg11, cfg)) / 8e3;
    table.add_row({"homogeneous " + cfg.to_string(), "1",
                   common::Table::num(kb, 4)});
  }

  // Which configurations does Odin actually visit across the horizon?
  core::OdinController odin(vgg11, nonideal, cost,
                            policy::OuPolicy(ou::OuLevelGrid(128)));
  std::set<ou::OuConfig> visited;
  for (double t : core::run_schedule(core::HorizonConfig{.runs = 200}))
    for (const auto& d : odin.run_inference(t).decisions)
      visited.insert(d.executed);
  const std::vector<ou::OuConfig> visited_vec(visited.begin(),
                                              visited.end());
  const double union_kb =
      static_cast<double>(
          storage.model_index_bits_union(vgg11, visited_vec)) / 8e3;
  table.add_row({"stored-table Odin (hypothetical)",
                 common::Table::integer(
                     static_cast<long long>(visited.size())),
                 common::Table::num(union_kb, 4)});
  table.add_row({"Odin (virtual OU controller)", "0",
                 "0 (+0.005 mm^2 logic)"});
  common::print_table("index storage on VGG11/CIFAR-10", table);

  std::printf("\n[shape] a stored-table adaptive scheme tracks %zu "
              "configurations -> %.0f KB of index tables vs ~%.1f KB for one "
              "homogeneous config; Odin needs none (Sec. II: 'requiring "
              "unlimited storage').\n",
              visited.size(), union_kb,
              static_cast<double>(
                  storage.model_index_bits(vgg11, {16, 16})) / 8e3);
  return 0;
}
