// Fig. 6 — Energy and latency of Odin vs homogeneous OU configurations for
// VGG11 on CIFAR-10, over the [t0, 1e8 s] horizon, normalized to the
// (16x16) configuration's *inferencing* energy/latency (paper convention).
// Also reports the reprogramming counts the paper quotes in Sec. V-C
// (16x16: 43, 8x4: 2, Odin: 1).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner(
      "Fig. 6: energy & latency, VGG11/CIFAR-10, homogeneous OUs vs Odin");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const arch::SystemModel system = setup.make_system();
  const arch::OverheadModel overhead = setup.make_overhead();

  bench::Stopwatch clock;
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const auto noc = system.map(vgg11.model()).noc_per_inference;
  std::printf("[setup] VGG11 pruned+mapped in %.1fs; overall sparsity %.1f%%\n",
              clock.seconds(), 100.0 * vgg11.model().overall_sparsity());

  const core::HorizonConfig horizon{};

  // Baselines.
  std::vector<core::AggregateResult> results;
  for (ou::OuConfig cfg : core::paper_baseline_configs())
    results.push_back(core::simulate_homogeneous(vgg11, nonideal, cost, cfg,
                                                 horizon, noc));

  // Odin: offline policy from the non-VGG families, adapted online.
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  std::printf("[setup] offline policy trained (excluding VGG) in %.1fs\n",
              clock.seconds());
  core::OdinController controller(vgg11, nonideal, cost, std::move(offline));
  results.push_back(core::simulate_odin(controller, horizon, noc, &overhead));

  const double e16_inf = results[0].inference.energy_j;
  const double l16_inf = results[0].inference.latency_s;
  const auto& odin_total = results.back();

  common::Table table({"config", "E_inf (mJ)", "E_total (mJ)", "L_inf (s)",
                       "L_total (s)", "reprograms", "E_norm(16x16 inf)",
                       "L_norm(16x16 inf)"});
  for (const auto& r : results) {
    table.add_row({r.label, common::Table::num(r.inference.energy_j * 1e3),
                   common::Table::num(r.total().energy_j * 1e3),
                   common::Table::num(r.inference.latency_s),
                   common::Table::num(r.total().latency_s),
                   common::Table::integer(r.reprograms),
                   common::Table::num(r.total().energy_j / e16_inf),
                   common::Table::num(r.total().latency_s / l16_inf)});
  }
  common::print_table(
      "Fig. 6 (a)+(b): totals over [t0, 1e8 s], " +
          std::to_string(horizon.runs) + " runs",
      table);

  common::Table ratios({"baseline", "energy ratio vs Odin",
                        "latency ratio vs Odin", "paper energy ratio"});
  const char* paper_energy[] = {"6.4", "4.0", "1.4", "3.0"};
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    ratios.add_row(
        {results[i].label,
         common::Table::num(results[i].total().energy_j /
                            odin_total.total().energy_j),
         common::Table::num(results[i].total().latency_s /
                            odin_total.total().latency_s),
         paper_energy[i]});
  }
  common::print_table("Odin's reduction factors (paper: up to 7.5x latency)",
                      ratios);
  std::printf("\n[paper] reprogram counts: 16x16 -> 43, 8x4 -> 2, Odin -> 1\n");
  std::printf("[bench] completed in %.1fs\n", clock.seconds());
  return 0;
}
