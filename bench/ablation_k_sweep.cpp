// Ablation — the resource-bounded search budget K (paper Sec. III-B uses
// K = 3 and Sec. V-B argues RB's ~3x timing advantage over EX).
//
// Sweeps K and measures: EDP quality of the chosen configurations relative
// to the exhaustive optimum, and the evaluation (timing) cost.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ou/search.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: RB search budget K vs exhaustive");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);

  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const int n = static_cast<int>(resnet18.layer_count());
  const double times[] = {1.0, 1e2, 1e4, 1e6, 3e7};
  // Starts mimic an imperfect policy: every grid configuration in turn.
  const auto starts = grid.all_configs();

  common::Table table({"K", "mean EDP vs EX optimum", "worst case",
                       "mean evals", "evals vs EX (36)"});
  for (int k : {0, 1, 2, 3, 4, 5, 8}) {
    double ratio_sum = 0.0, ratio_worst = 0.0, evals_sum = 0.0;
    long long cases = 0;
    for (double t : times) {
      for (int j = 0; j < n; ++j) {
        ou::LayerContext ctx{
            .mapping = &resnet18.mapping(static_cast<std::size_t>(j)),
            .cost = &cost,
            .nonideal = &nonideal,
            .grid = &grid,
            .elapsed_s = t,
            .sensitivity = nonideal.layer_sensitivity(j, n)};
        const auto ex = ou::exhaustive_search(ctx);
        if (!ex.found) continue;
        for (const ou::OuConfig& start : starts) {
          const auto rb = ou::resource_bounded_search(ctx, start, k);
          const double ratio = rb.found ? rb.edp / ex.edp : 1e9;
          ratio_sum += ratio;
          ratio_worst = std::max(ratio_worst, ratio);
          evals_sum += rb.evaluations;
          ++cases;
        }
      }
    }
    const double mean_ratio = ratio_sum / static_cast<double>(cases);
    const double mean_evals = evals_sum / static_cast<double>(cases);
    table.add_row({common::Table::integer(k),
                   common::Table::num(mean_ratio, 4),
                   common::Table::num(ratio_worst, 4),
                   common::Table::num(mean_evals, 3),
                   common::Table::num(36.0 / mean_evals, 3)});
  }
  common::print_table(
      "ResNet18 layers x 5 time points x 36 start configurations", table);
  std::printf("\n[shape] K = 3 (the paper's choice) recovers near-optimal "
              "EDP from arbitrary starts at ~1/3 of EX's evaluations; the "
              "returns beyond K = 3 are small.\n");
  return 0;
}
