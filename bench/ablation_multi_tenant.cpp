// Ablation — multi-tenant serving (the deployment story of Sec. I).
//
// Four CIFAR-10 workloads from different families share the accelerator;
// inference traffic rotates across them over the drift horizon. One Odin
// policy serves all tenants, transferring what it learns between them;
// the baselines run each tenant at a fixed homogeneous OU. Tenant switches
// (array reprogramming) are charged identically to everyone.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/serving.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: multi-tenant serving across the drift horizon");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  bench::Stopwatch clock;
  const ou::MappedModel resnet =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const ou::MappedModel vgg =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const ou::MappedModel vit =
      setup.make_mapped(dnn::make_vit(data::DatasetKind::kCifar10));
  const ou::MappedModel mobilenet =
      setup.make_mapped(dnn::make_mobilenetv1(data::DatasetKind::kCifar10));
  const std::vector<const ou::MappedModel*> tenants{&resnet, &vgg, &vit,
                                                    &mobilenet};
  std::printf("[setup] 4 tenants mapped in %.1fs\n", clock.seconds());

  core::ServingConfig cfg;
  cfg.horizon.runs = 400;
  cfg.segments = 8;

  common::Table table({"scheme", "E_total (mJ)", "L_total (s)", "EDP (Js)",
                       "drift reprograms", "mismatch rate %",
                       "EDP vs Odin"});
  const auto odin = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
  auto add_row = [&](const core::ServingResult& r) {
    int reprograms = 0;
    for (const auto& t : r.tenants) reprograms += t.reprograms;
    const double layers_served = [&] {
      double n = 0;
      for (std::size_t i = 0; i < tenants.size(); ++i)
        n += static_cast<double>(r.tenants[i].runs) *
             static_cast<double>(tenants[i]->layer_count());
      return n;
    }();
    table.add_row({r.label,
                   common::Table::num(r.total().energy_j * 1e3, 4),
                   common::Table::num(r.total().latency_s, 4),
                   common::Table::num(r.total_edp(), 4),
                   common::Table::integer(reprograms),
                   common::Table::num(
                       100.0 * r.total_mismatches() / layers_served, 3),
                   common::Table::num(r.total_edp() / odin.total_edp(), 3)});
  };
  add_row(odin);
  for (ou::OuConfig cfgou : core::paper_baseline_configs())
    add_row(core::serve_with_homogeneous(tenants, nonideal, cost, cfgou,
                                         cfg));
  common::print_table(
      "4 tenants (ResNet18 / VGG11 / ViT / MobileNetV1), 8 segments, "
      "400 runs",
      table);

  common::Table per({"tenant", "runs", "Odin E_inf (mJ)",
                     "Odin mismatches"});
  for (const auto& t : odin.tenants)
    per.add_row({t.name, common::Table::integer(t.runs),
                 common::Table::num(t.inference.energy_j * 1e3, 4),
                 common::Table::integer(t.mismatches)});
  common::print_table("Odin per-tenant view", per);
  std::printf("\n[shape] one policy serves every tenant — the featurized "
              "layer space transfers across architectures (the paper's "
              "'unseen DNN' premise, stress-tested with tenant churn); "
              "%d online updates occurred. (%.1fs)\n",
              odin.policy_updates, clock.seconds());
  return 0;
}
