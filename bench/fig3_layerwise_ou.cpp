// Fig. 3 — Layer-wise OU size (R x C product) and weight sparsity for
// ResNet18 (including skip-connection projections) on CIFAR-10 at t = t0.
//
// Expected shape (paper Sec. V-B): accuracy-sensitive early layers get
// fine OUs (e.g. 16x8); the low-sparsity 1x1 skip projections at layers 13
// and 18 (1-based) get coarse OUs (e.g. 32x32) to cut their OU cycle count.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Fig. 3: layer-wise OU size & sparsity, ResNet18/CIFAR-10, t0");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  bench::Stopwatch clock;
  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kResNet);
  std::printf("[setup] done in %.1fs\n", clock.seconds());

  core::OdinController controller(resnet18, nonideal, cost,
                                  std::move(offline));
  const core::RunResult run = controller.run_inference(setup.device.t0_s);

  common::Table table({"layer", "name", "kernel", "sparsity %", "OU (RxC)",
                       "RxC product", "sensitivity"});
  const int n = static_cast<int>(resnet18.layer_count());
  for (int j = 0; j < n; ++j) {
    const auto& layer = resnet18.model().layers[static_cast<std::size_t>(j)];
    const auto& decision = run.decisions[static_cast<std::size_t>(j)];
    table.add_row({common::Table::integer(j + 1), layer.name,
                   common::Table::integer(layer.kernel),
                   common::Table::num(100.0 * layer.weight_sparsity, 3),
                   decision.executed.to_string(),
                   common::Table::integer(decision.executed.product()),
                   common::Table::num(
                       nonideal.layer_sensitivity(layer.index, n), 3)});
  }
  common::print_table("Fig. 3: layer-wise OU configuration at t0", table);

  const auto& first = run.decisions.front().executed;
  const auto& skip13 = run.decisions[12].executed;
  std::printf("\n[shape] paper: early layers ~16x8 (128), low-sparsity skip "
              "layers ~32x32 (1024)\n");
  std::printf("[shape] ours : layer 1 -> %s (%lld), layer 13 -> %s (%lld)\n",
              first.to_string().c_str(), first.product(),
              skip13.to_string().c_str(), skip13.product());
  return 0;
}
