// Fig. 8 — Total EDP of the Odin-enabled accelerator vs the four
// state-of-the-art homogeneous OU configurations across all nine DNN
// workloads (CIFAR-10, CIFAR-100, TinyImageNet), normalized to the (16x16)
// configuration's inferencing EDP, as in the paper.
//
// Paper headline: Odin reduces EDP by 3.9x / 2.5x / 1.5x / 1.9x on average
// vs (16x16) / (16x4) / (9x8) / (8x4), and by up to 8.7x.
#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Fig. 8: total EDP across all nine DNN workloads");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const arch::SystemModel system = setup.make_system();
  const arch::OverheadModel overhead = setup.make_overhead();
  const core::HorizonConfig horizon{};
  const auto baselines = core::paper_baseline_configs();

  bench::Stopwatch clock;
  // Map all nine workloads once; offline policies per held-out family are
  // trained from the other workloads' mappings.
  std::vector<std::unique_ptr<ou::MappedModel>> mapped;
  for (dnn::DnnModel& model : dnn::paper_workloads())
    mapped.push_back(
        std::make_unique<ou::MappedModel>(setup.make_mapped(std::move(model))));
  std::printf("[setup] 9 workloads pruned+mapped in %.1fs\n", clock.seconds());

  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);
  std::map<dnn::Family, std::unique_ptr<policy::OuPolicy>> policies;
  for (const auto& mm : mapped) {
    const dnn::Family family = mm->model().family;
    if (policies.count(family)) continue;
    std::vector<const ou::MappedModel*> known;
    for (const auto& other : mapped)
      if (other->model().family != family) known.push_back(other.get());
    policies[family] = std::make_unique<policy::OuPolicy>(
        policy::train_offline_policy(known, nonideal, cost, grid));
    std::printf("[setup] offline policy excluding %s trained (%.1fs)\n",
                dnn::family_name(family).c_str(), clock.seconds());
  }

  common::Table table({"workload", "dataset", "16x16", "16x4", "9x8", "8x4",
                       "Odin", "Odin vs 16x16", "Odin vs best baseline"});
  std::map<std::string, std::vector<double>> reductions;  // per baseline
  double max_reduction = 0.0;
  std::string max_reduction_at;

  // Per-workload arms are independent; clone each arm's policy up front
  // (clone() is not const-safe on a shared policy), then fan out. Within an
  // arm the baseline sweep fans out again when lanes are idle; nested
  // regions degrade to inline execution, never deadlock.
  std::vector<policy::OuPolicy> arm_policies;
  arm_policies.reserve(mapped.size());
  for (const auto& mm : mapped)
    arm_policies.push_back(policies.at(mm->model().family)->clone());
  const auto arms = common::parallel_transform(
      mapped.size(), 1, [&](std::size_t i) {
        const auto& mm = mapped[i];
        const auto noc = system.map(mm->model()).noc_per_inference;
        std::vector<core::AggregateResult> results =
            core::simulate_homogeneous_sweep(*mm, nonideal, cost, baselines,
                                             horizon, noc);
        core::OdinController controller(*mm, nonideal, cost,
                                        std::move(arm_policies[i]));
        results.push_back(
            core::simulate_odin(controller, horizon, noc, &overhead));
        std::printf("[run] %-12s done (%.1fs)\n", mm->model().name.c_str(),
                    clock.seconds());
        return results;
      });

  for (std::size_t w = 0; w < mapped.size(); ++w) {
    const auto& mm = mapped[w];
    const std::vector<core::AggregateResult>& results = arms[w];

    const double norm = results[0].inference_edp();  // 16x16 inferencing EDP
    const double odin_edp = results.back().total_edp();
    std::vector<std::string> row{
        mm->model().name,
        data::DatasetSpec::for_kind(mm->model().dataset).name};
    double best_baseline = 1e300;
    for (std::size_t b = 0; b < baselines.size(); ++b) {
      const double edp = results[b].total_edp();
      row.push_back(common::Table::num(edp / norm, 4));
      best_baseline = std::min(best_baseline, edp);
      const double reduction = edp / odin_edp;
      reductions[baselines[b].to_string()].push_back(reduction);
      if (reduction > max_reduction) {
        max_reduction = reduction;
        max_reduction_at = mm->model().name + " vs " +
                           baselines[b].to_string();
      }
    }
    row.push_back(common::Table::num(odin_edp / norm, 4));
    row.push_back(common::Table::num(results[0].total_edp() / odin_edp, 3));
    row.push_back(common::Table::num(best_baseline / odin_edp, 3));
    table.add_row(std::move(row));
  }
  common::print_table(
      "Fig. 8: total EDP normalized to (16x16) inferencing EDP", table);

  common::Table avg({"baseline", "mean EDP reduction by Odin",
                     "paper mean"});
  const std::map<std::string, std::string> paper{{"16x16", "3.9"},
                                                 {"16x4", "2.5"},
                                                 {"9x8", "1.5"},
                                                 {"8x4", "1.9"}};
  for (const ou::OuConfig cfg : baselines) {
    const auto& r = reductions[cfg.to_string()];
    avg.add_row({cfg.to_string(), common::Table::num(common::mean(r), 3),
                 paper.at(cfg.to_string())});
  }
  common::print_table("average EDP reductions across workloads", avg);
  std::printf("\n[headline] max EDP reduction: %.2fx (%s); paper: up to 8.7x"
              "\n",
              max_reduction, max_reduction_at.c_str());
  return 0;
}
