// Fig. 4 — OU-size distribution shift under conductance drift for ResNet18
// on CIFAR-10: a histogram of layer-wise OU products at increasing times.
// The paper's observation: the distribution's peak moves left (toward fine
// OUs such as 8x4) as drift accumulates.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ou/search.hpp"

using namespace odin;

int main() {
  bench::banner("Fig. 4: OU-size distribution vs drift, ResNet18/CIFAR-10");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);

  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const int n = static_cast<int>(resnet18.layer_count());

  const double times[] = {1.0, 1e2, 1e4, 1e6, 5e7};
  // Distribution of the best (exhaustive) configuration — what the adapted
  // policy converges to at each time.
  std::map<long long, std::map<double, int>> histogram;  // product -> t -> n
  for (double t : times) {
    for (int j = 0; j < n; ++j) {
      ou::LayerContext ctx{
          .mapping = &resnet18.mapping(static_cast<std::size_t>(j)),
          .cost = &cost,
          .nonideal = &nonideal,
          .grid = &grid,
          .elapsed_s = t,
          .sensitivity = nonideal.layer_sensitivity(j, n)};
      const auto best = ou::exhaustive_search(ctx);
      if (best.found) ++histogram[best.best.product()][t];
    }
  }

  common::Table table({"OU product (RxC)", "t=1s", "t=1e2s", "t=1e4s",
                       "t=1e6s", "t=5e7s"});
  for (const auto& [product, counts] : histogram) {
    std::vector<std::string> row{common::Table::integer(product)};
    for (double t : times) {
      const auto it = counts.find(t);
      row.push_back(common::Table::integer(it == counts.end() ? 0
                                                              : it->second));
    }
    table.add_row(std::move(row));
  }
  common::print_table(
      "Fig. 4: number of DNN layers per OU product, over drift time", table);

  // The paper's left shift: the end-of-horizon distribution is much finer
  // than at t0. (A mild early coarsening is expected in our decomposition:
  // the IR-drop term scales with the drifted conductance, so the
  // sensitivity constraint relaxes slightly before the total-drift
  // constraint takes over — see EXPERIMENTS.md.)
  std::printf("\nmean OU product by time:");
  std::vector<double> means;
  for (double t : times) {
    double sum = 0.0;
    int cnt = 0;
    for (const auto& [product, counts] : histogram) {
      const auto it = counts.find(t);
      if (it != counts.end()) {
        sum += static_cast<double>(product) * it->second;
        cnt += it->second;
      }
    }
    means.push_back(cnt ? sum / cnt : 0.0);
    std::printf("  t=%.0e -> %.0f", t, means.back());
  }
  const bool shifts_left = means.back() < 0.25 * means.front();
  std::printf("\n[shape] distribution shifts toward finer OUs over the "
              "horizon: %s\n",
              shifts_left ? "yes" : "NO");
  return shifts_left ? 0 : 1;
}
