// Extension — trace-driven fleet campaign: a replayable million-request,
// thousand-tenant serving campaign (core/scenario.hpp) on the 36-PE mesh.
//
// One seeded scenario drives everything: per-tenant Poisson arrivals shaped
// by a diurnal cycle, flash crowds that multiply a contiguous tenant range's
// traffic 8x, tenant churn (late arrivals / early departures), and two
// correlated fault storms that fire drift windows plus write-campaign
// bursts on the mesh-adjacent PE blocks around a center PE. Three campaign
// arms run over the identical trace:
//
//  * autoscaled — the reactive policy re-cuts shard PE blocks and migrates
//    tenants at epoch boundaries when per-PE demand goes imbalanced;
//  * static — the same trace on the fixed initial partition;
//  * crash/resume — the autoscaled campaign killed mid-storm (max_requests)
//    with periodic v6 checkpoints, then resumed from the newest slot.
//
// The headline claims this bench exists to pin (BENCH_fleet_campaign.json):
//  * determinism — two runs of the same seed produce byte-identical
//    campaign summaries (streaming P^2 sketches, no wall-clock anywhere);
//  * durability — the resumed campaign's summary is byte-identical to the
//    uninterrupted run's, despite dying inside a fault storm;
//  * autoscaling pays — the autoscaled arm's flash-phase p99 slack beats
//    the static arm's (the flash crowd lands on one or two shards; the
//    autoscaler moves PEs and tenants toward it).
//
// Memory stays bounded at campaign scale: per-tenant sojourn vectors are
// capped (ResilienceConfig-style reservoir) and every percentile in the
// summary comes from constant-size streaming sketches.
//
// --smoke shrinks the horizon for CI; --requests/--tenants override the
// campaign size; --json PATH writes the summary (BENCH_fleet_campaign.json);
// --build-type and --git-sha stamp provenance (tools/run_bench.sh passes
// both).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/scenario.hpp"

using namespace odin;

namespace {

/// Minimal JSON string escape for the summary blob (it contains newlines).
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\n')
      out += "\\n";
    else if (c == '"' || c == '\\')
      (out += '\\') += c;
    else
      out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* build_type = "unknown";
  const char* git_sha = "unknown";
  long long requests = 1'200'000;
  int tenants = 1'200;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--build-type") == 0) build_type = argv[i + 1];
    if (std::strcmp(argv[i], "--git-sha") == 0) git_sha = argv[i + 1];
    if (std::strcmp(argv[i], "--requests") == 0)
      requests = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--tenants") == 0)
      tenants = std::atoi(argv[i + 1]);
  }
  if (smoke) {
    requests = 30'000;
    tenants = 120;
  }

  bench::banner(
      "Extension: trace-driven fleet campaign (scenario engine + autoscaler)");

  core::CampaignConfig cfg;
  cfg.scenario.seed = 1;
  cfg.scenario.tenants = tenants;
  cfg.scenario.requests = requests;
  cfg.scenario.flash_crowds = 2;
  // Explicit storms so the crash point below is provably mid-storm: the
  // first window spans [0.40, 0.65] of the horizon and the kill fires at
  // 52% of the requests.
  core::FaultStorm storm1;
  storm1.start_frac = 0.40;
  storm1.duration_frac = 0.25;
  storm1.drift_multiplier = 3.0;
  storm1.radius = 1;
  storm1.campaigns = 4;
  core::FaultStorm storm2;
  storm2.start_frac = 0.78;
  storm2.duration_frac = 0.05;
  storm2.drift_multiplier = 5.0;
  storm2.radius = 2;
  storm2.campaigns = 6;
  cfg.scenario.storms = {storm1, storm2};
  cfg.shards = 6;
  cfg.epochs = 96;
  cfg.sojourn_cap = 64;  // bounded memory at 1e6-request scale
  cfg.autoscale.enabled = 1;
  // The calibrated SLOs sit at seconds while a flash-crowd backlog runs to
  // thousands of seconds; at the default shed bar (8x SLO) the entire
  // flash phase sheds on both arms and the placement difference is
  // invisible in the tail. Lift the bar so queue dynamics stay visible and
  // only the very worst overload sheds.
  cfg.queue_shed_slo_mult = 400.0;

  std::printf("[setup] %lld requests, %d tenants, %d shards, %d epochs\n",
              requests, tenants, cfg.shards, cfg.epochs);

  // Arm 1+2: autoscaled, run twice — the determinism pin.
  bench::Stopwatch clock_a;
  const core::CampaignResult autoscaled = core::run_campaign(cfg);
  const double wall_autoscaled = clock_a.seconds();
  const core::CampaignResult replay = core::run_campaign(cfg);
  const std::string summary_a = autoscaled.summary();
  const bool deterministic = summary_a == replay.summary();
  std::printf("[autoscaled] %.1fs; same-seed replay byte-identical: %s\n",
              wall_autoscaled, deterministic ? "yes" : "NO");

  // Arm 3: static placement on the identical trace.
  core::CampaignConfig static_cfg = cfg;
  static_cfg.autoscale.enabled = 0;
  bench::Stopwatch clock_s;
  const core::CampaignResult fixed = core::run_campaign(static_cfg);
  const double wall_static = clock_s.seconds();
  std::printf("[static] %.1fs\n", wall_static);

  // Arm 4: kill the autoscaled campaign mid-storm, resume from the v6
  // checkpoint pair, and demand the final summary match arm 1 bitwise.
  core::CampaignConfig crash_cfg = cfg;
  crash_cfg.checkpoint.base_path = "fleet_campaign_ckpt";
  crash_cfg.checkpoint.every_runs =
      static_cast<int>(std::max<long long>(1, requests / 16));
  crash_cfg.max_requests = (requests * 52) / 100;
  bench::Stopwatch clock_r;
  const core::CampaignResult interrupted = core::run_campaign(crash_cfg);
  const double cut_frac =
      interrupted.state.clock_s / cfg.scenario.horizon_s;
  const bool mid_storm = cut_frac >= storm1.start_frac &&
                         cut_frac < storm1.start_frac + storm1.duration_frac;
  const auto resumed = core::resume_campaign(crash_cfg);
  const double wall_resume = clock_r.seconds();
  std::remove("fleet_campaign_ckpt.a");
  std::remove("fleet_campaign_ckpt.b");
  if (!resumed.has_value()) {
    std::fprintf(stderr, "error: resume_campaign refused its own pair\n");
    return 1;
  }
  const bool resume_bitwise = resumed->summary() == summary_a;
  std::printf(
      "[crash/resume] killed at %lld/%lld requests (t = %.0f s, %.0f%% of "
      "horizon, %s storm 1, %d storm(s) fired); resumed summary "
      "byte-identical: %s (%.1fs)\n",
      static_cast<long long>(interrupted.requests()), requests,
      interrupted.state.clock_s,
      100.0 * cut_frac, mid_storm ? "inside" : "OUTSIDE",
      interrupted.state.storms_fired, resume_bitwise ? "yes" : "NO",
      wall_resume);

  auto row = [](const core::CampaignResult& r, double wall_s) {
    return std::vector<std::string>{
        r.label,
        common::Table::integer(r.requests()),
        common::Table::integer(r.state.misses),
        common::Table::integer(r.state.sheds),
        common::Table::integer(r.state.migrations),
        common::Table::integer(r.state.rescales),
        common::Table::num(r.p99_slack_s(), 4),
        common::Table::num(r.flash_p99_slack_s(), 4),
        common::Table::num(r.edp_per_request(), 6),
        common::Table::num(wall_s, 2)};
  };
  common::Table table({"arm", "requests", "misses", "sheds", "migrations",
                       "rescales", "p99 slack (s)", "flash p99 (s)",
                       "per-req EDP (Js)", "wall (s)"});
  table.add_row(row(autoscaled, wall_autoscaled));
  table.add_row(row(fixed, wall_static));
  common::print_table("campaign arms over the identical seeded trace", table);

  common::Table tiers({"tier", "tenants", "runs", "misses", "sheds",
                       "autoscaled p99 slack", "static p99 slack"});
  for (int t = 0; t < 3; ++t) {
    const auto tier = static_cast<core::PriorityTier>(t);
    int n = 0;
    long long runs = 0, misses = 0, sheds = 0;
    for (std::size_t i = 0; i < autoscaled.roster.size(); ++i) {
      if (autoscaled.roster[i].tier != tier) continue;
      ++n;
      runs += autoscaled.tenants[i].runs;
      misses += autoscaled.tenants[i].deadline_misses;
      sheds += autoscaled.tenants[i].shed_runs;
    }
    tiers.add_row({core::tier_name(tier), common::Table::integer(n),
                   common::Table::integer(runs),
                   common::Table::integer(misses),
                   common::Table::integer(sheds),
                   common::Table::num(autoscaled.tier_p99_slack_s(tier), 4),
                   common::Table::num(fixed.tier_p99_slack_s(tier), 4)});
  }
  common::print_table("priority tiers (gold/silver/bronze SLO budgets)",
                      tiers);

  const double flash_gain =
      autoscaled.flash_p99_slack_s() - fixed.flash_p99_slack_s();
  std::printf(
      "\n[headline] flash-phase p99 slack: autoscaled %+.4f s vs static "
      "%+.4f s (gain %+.4f s over %lld flash requests); deterministic "
      "replay %s, mid-storm resume %s\n",
      autoscaled.flash_p99_slack_s(), fixed.flash_p99_slack_s(), flash_gain,
      static_cast<long long>(autoscaled.state.flash_requests),
      deterministic ? "PASS" : "FAIL",
      resume_bitwise ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"build_type\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"note\": \"seeded scenario campaign on the 36-PE mesh: "
                 "diurnal arrivals, 2 flash crowds, tenant churn, 2 "
                 "correlated fault storms; autoscaled vs static placement; "
                 "crash mid-storm + v6 checkpoint resume; all percentiles "
                 "from streaming P2 sketches\",\n"
                 "  \"requests\": %lld,\n"
                 "  \"tenants\": %d,\n"
                 "  \"shards\": %d,\n"
                 "  \"epochs\": %d,\n"
                 "  \"seed\": %llu,\n",
                 build_type, git_sha, requests, tenants, cfg.shards,
                 cfg.epochs,
                 static_cast<unsigned long long>(autoscaled.scenario.seed));
    auto arm_json = [&](const char* key, const core::CampaignResult& r,
                        double wall_s) {
      std::fprintf(
          f,
          "  \"%s\": {\"requests\": %lld, \"misses\": %lld, "
          "\"sheds\": %lld, \"migrations\": %lld, \"rescales\": %d, "
          "\"storm_campaigns\": %lld, \"p99_slack_s\": %.17g, "
          "\"flash_p99_slack_s\": %.17g, \"edp_per_request_js\": %.17g, "
          "\"energy_j\": %.17g, \"bench_wall_s\": %.3f},\n",
          key, static_cast<long long>(r.requests()),
          static_cast<long long>(r.state.misses),
          static_cast<long long>(r.state.sheds),
          static_cast<long long>(r.state.migrations), r.state.rescales,
          static_cast<long long>(r.state.storm_campaigns_fired),
          r.p99_slack_s(), r.flash_p99_slack_s(), r.edp_per_request(),
          r.state.energy_j, wall_s);
    };
    arm_json("autoscaled", autoscaled, wall_autoscaled);
    arm_json("static", fixed, wall_static);
    std::fprintf(f, "  \"trajectory\": [\n");
    for (std::size_t e = 0; e < autoscaled.trajectory.size(); ++e) {
      const core::CampaignEpoch& ep = autoscaled.trajectory[e];
      std::fprintf(f,
                   "    {\"t_end_s\": %.6g, \"requests\": %lld, "
                   "\"misses\": %lld, \"sheds\": %lld, "
                   "\"p99_slack_s\": %.6g, \"edp_per_request_js\": %.6g}%s\n",
                   ep.t_end_s, static_cast<long long>(ep.requests),
                   static_cast<long long>(ep.misses),
                   static_cast<long long>(ep.sheds), ep.p99_slack_s,
                   ep.edp_per_request(),
                   e + 1 < autoscaled.trajectory.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"headline\": {\n"
                 "    \"deterministic_replay\": %s,\n"
                 "    \"mid_storm_crash\": %s,\n"
                 "    \"resume_bitwise_identical\": %s,\n"
                 "    \"flash_p99_slack_gain_s\": %.17g\n"
                 "  },\n"
                 "  \"summary\": \"%s\"\n"
                 "}\n",
                 deterministic ? "true" : "false",
                 mid_storm ? "true" : "false",
                 resume_bitwise ? "true" : "false", flash_gain,
                 escape(autoscaled.summary(false)).c_str());
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return deterministic && resume_bitwise ? 0 : 1;
}
