// Sec. V-E — Overhead analysis of online learning and layer-wise OU-based
// computation: controller area, prediction power/latency, policy update
// energy and training-buffer storage, cross-checked against a measured
// VGG11 horizon run.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Sec. V-E: overhead analysis");
  const core::Setup setup = bench::default_setup();
  const arch::OverheadModel overhead = setup.make_overhead();
  const auto& p = overhead.params();

  common::Table table({"quantity", "ours", "paper"});
  table.add_row({"OU+ADC controller area (mm^2)",
                 common::Table::num(p.ou_adc_controller_area_mm2), "0.005"});
  table.add_row({"controller / tile area",
                 common::Table::num(100.0 * overhead.controller_tile_fraction(),
                                    3) + " %",
                 "1.8 %"});
  table.add_row({"online-learning hardware (mm^2)",
                 common::Table::num(p.online_learning_area_mm2), "0.076"});
  table.add_row({"learning hw / 36-PE system",
                 common::Table::num(
                     100.0 * overhead.learning_system_fraction(), 2) + " %",
                 "0.2 %"});
  table.add_row({"OU prediction power",
                 common::Table::num(p.prediction_power_w * 1e3, 3) + " mW",
                 "0.14 mW"});
  table.add_row({"prediction latency penalty",
                 common::Table::num(100.0 * p.prediction_latency_fraction,
                                    2) + " %",
                 "0.9 % (vs static 16x16)"});
  table.add_row({"policy update energy (100 epochs)",
                 common::Table::num(p.policy_update_energy_j * 1e6, 3) +
                     " uJ",
                 "0.22 uJ"});
  table.add_row({"training buffer",
                 std::to_string(p.buffer_entries) + " entries, " +
                     common::Table::num(overhead.buffer_bytes() / 1024.0, 3) +
                     " KB",
                 "50 entries, 0.35 KB"});
  common::print_table("Sec. V-E: reported overheads", table);

  // Policy storage: the MLP the paper describes (4 inputs, ReLU trunk, two
  // 6-way softmax heads).
  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);
  policy::OuPolicy policy(grid);
  std::printf("\npolicy parameters: %zu (%.2f KB as fp32)\n",
              policy.parameter_count(),
              static_cast<double>(policy.parameter_count()) * 4.0 / 1024.0);

  // Cross-check amortization on a measured horizon run.
  bench::Stopwatch clock;
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  core::OdinController controller(vgg11, nonideal, cost,
                                  policy::OuPolicy(grid));
  const auto odin = core::simulate_odin(controller, core::HorizonConfig{},
                                        {}, &overhead);
  const double update_energy =
      overhead.total_update_energy_j(odin.policy_updates);
  std::printf("measured over [t0, 1e8 s]: %d policy updates -> %.3g uJ "
              "update energy (%.2e of total inference energy); "
              "prediction energy share %.3f%% (run %.1fs)\n",
              odin.policy_updates, update_energy * 1e6,
              update_energy / odin.inference.energy_j,
              100.0 * overhead.prediction_energy_j(odin.inference.latency_s) /
                  odin.inference.energy_j,
              clock.seconds());
  return 0;
}
