// Pipeline breakdown — checks the paper's Sec. III-B premise ("ADC is the
// critical part of the pipeline") by totalling per-stage work for VGG11's
// layers across OU configurations and reporting each stage's share.
#include <cstdio>

#include "arch/pipeline.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Pipeline stage breakdown (premise check for Eq. 1)");
  const core::Setup setup = bench::default_setup();
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const arch::PipelineRates rates;

  for (ou::OuConfig cfg : {ou::OuConfig{8, 4}, ou::OuConfig{16, 16},
                           ou::OuConfig{32, 32}}) {
    common::Table table({"layer", "eDRAM %", "DAC %", "ADC %", "S+A %",
                         "writeback %", "bottleneck"});
    int adc_bottlenecks = 0;
    for (std::size_t j = 0; j < vgg11.layer_count(); ++j) {
      const auto& layer = vgg11.model().layers[j];
      const auto analysis =
          arch::analyze_layer(layer, vgg11.mapping(j).counts(cfg), cfg,
                              setup.cost_params, rates);
      if (analysis.bottleneck == arch::PipelineStage::kAdcConvert)
        ++adc_bottlenecks;
      table.add_row(
          {layer.name,
           common::Table::num(
               100.0 * analysis.share(arch::PipelineStage::kEdramFetch), 3),
           common::Table::num(
               100.0 * analysis.share(arch::PipelineStage::kDacDrive), 3),
           common::Table::num(
               100.0 * analysis.share(arch::PipelineStage::kAdcConvert), 3),
           common::Table::num(
               100.0 * analysis.share(arch::PipelineStage::kShiftAdd), 3),
           common::Table::num(
               100.0 * analysis.share(arch::PipelineStage::kWriteback), 3),
           arch::stage_name(analysis.bottleneck)});
    }
    common::print_table("VGG11/CIFAR-10 at OU " + cfg.to_string(), table);
    std::printf("ADC is the bottleneck for %d/%zu layers\n", adc_bottlenecks,
                vgg11.layer_count());
  }
  std::printf("\n[shape] the ADC dominates at every standard OU size — the "
              "premise behind Eq. 1's latency model and the reconfigurable-"
              "ADC design (Table I).\n");
  return 0;
}
