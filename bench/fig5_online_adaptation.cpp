// Fig. 5 — Layer-wise OU configurations for the unseen VGG11: the offline
// optimum (exhaustive search ground truth) vs what Odin chooses online via
// resource-bounded (RB) and exhaustive (EX) search, at t = t0, 1e2 s, 1e4 s.
//
// Paper Sec. V-B: by t = 1e2 s the RB-driven policy has adapted and tracks
// the offline configuration closely; EX tracks even earlier but costs ~3x
// the search time (see bench/micro_search_overhead).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ou/search.hpp"

using namespace odin;

namespace {

/// Mean |log2(product_a / product_b)| across layers — "how far from the
/// offline optimum", in OU-grid steps.
double mean_log_distance(const std::vector<ou::OuConfig>& a,
                         const std::vector<ou::OuConfig>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += std::abs(std::log2(static_cast<double>(a[i].product())) -
                    std::log2(static_cast<double>(b[i].product())));
  return acc / static_cast<double>(a.size());
}

}  // namespace

int main() {
  bench::banner("Fig. 5: offline vs online (RB / EX) OU configs, VGG11");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const ou::OuLevelGrid grid(setup.pim.tile.crossbar_size);

  bench::Stopwatch clock;
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  policy::OuPolicy offline_rb =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  policy::OuPolicy offline_ex =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  std::printf("[setup] done in %.1fs\n", clock.seconds());

  core::OdinConfig rb_cfg;  // resource-bounded, K = 3 (default)
  core::OdinConfig ex_cfg;
  ex_cfg.search = core::SearchKind::kExhaustive;
  core::OdinController rb(vgg11, nonideal, cost, std::move(offline_rb),
                          rb_cfg);
  core::OdinController ex(vgg11, nonideal, cost, std::move(offline_ex),
                          ex_cfg);

  const int n = static_cast<int>(vgg11.layer_count());
  const double snapshots[] = {1.0, 1e2, 1e4};
  // Drive both controllers along the same dense run schedule, capturing the
  // layer-wise decisions at the snapshot times.
  const core::HorizonConfig horizon{.t_start_s = 1.0, .t_end_s = 1e4,
                                    .runs = 120};
  auto schedule = core::run_schedule(horizon);
  for (double t : snapshots)
    if (std::find(schedule.begin(), schedule.end(), t) == schedule.end())
      schedule.push_back(t);
  std::sort(schedule.begin(), schedule.end());

  std::map<double, std::vector<ou::OuConfig>> rb_choice, ex_choice,
      rb_policy_only, offline_best;
  for (double t : schedule) {
    const auto rb_run = rb.run_inference(t);
    const auto ex_run = ex.run_inference(t);
    for (double snap : snapshots) {
      if (t != snap) continue;
      auto& rbv = rb_choice[snap];
      auto& rbp = rb_policy_only[snap];
      auto& exv = ex_choice[snap];
      auto& off = offline_best[snap];
      for (int j = 0; j < n; ++j) {
        rbv.push_back(rb_run.decisions[static_cast<std::size_t>(j)].executed);
        rbp.push_back(
            rb_run.decisions[static_cast<std::size_t>(j)].policy_choice);
        exv.push_back(ex_run.decisions[static_cast<std::size_t>(j)].executed);
        ou::LayerContext ctx{
            .mapping = &vgg11.mapping(static_cast<std::size_t>(j)),
            .cost = &cost,
            .nonideal = &nonideal,
            .grid = &grid,
            .elapsed_s = t,
            .sensitivity = nonideal.layer_sensitivity(j, n)};
        off.push_back(ou::exhaustive_search(ctx).best);
      }
    }
  }

  for (double snap : snapshots) {
    common::Table table({"layer", "offline best", "Odin RB", "Odin EX",
                         "policy pi(Phi)"});
    for (int j = 0; j < n; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      table.add_row({common::Table::integer(j + 1),
                     offline_best[snap][idx].to_string(),
                     rb_choice[snap][idx].to_string(),
                     ex_choice[snap][idx].to_string(),
                     rb_policy_only[snap][idx].to_string()});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig. 5 at t = %.0e s (VGG11, unseen)", snap);
    common::print_table(title, table);
  }

  common::Table dist({"t (s)", "RB dist to offline", "EX dist to offline",
                      "policy dist to offline"});
  for (double snap : snapshots)
    dist.add_row({common::Table::num(snap, 3),
                  common::Table::num(
                      mean_log_distance(rb_choice[snap], offline_best[snap])),
                  common::Table::num(
                      mean_log_distance(ex_choice[snap], offline_best[snap])),
                  common::Table::num(mean_log_distance(
                      rb_policy_only[snap], offline_best[snap]))});
  common::print_table(
      "distance to offline optimum (mean |log2 product gap|)", dist);
  std::printf("\n[shape] paper: online configs track offline closely by "
              "t = 1e2 s; EX tracks at least as well as RB\n");
  return 0;
}
