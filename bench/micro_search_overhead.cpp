// Micro-benchmarks (google-benchmark) for the online-learning hot path:
// resource-bounded vs exhaustive search (paper Sec. V-B reports EX at ~3x
// RB's timing overhead for K = 3 over 36 configurations) and the policy
// MLP's prediction latency.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "ou/search.hpp"

using namespace odin;

namespace {

/// Shared fixture: one mapped mid-size layer with all OU counts pre-cached
/// so the benchmark times the search logic, not the first-touch scans.
struct SearchFixture {
  SearchFixture() {
    layer.name = "bench";
    layer.fan_in = 1152;
    layer.outputs = 256;
    layer.spatial_positions = 64;
    layer.kernel = 3;
    layer.index = 4;
    pattern = dnn::prune_layer(layer, 42);
    mapping = std::make_unique<ou::LayerMapping>(layer, pattern, 128);
    for (const auto& cfg : grid.all_configs()) mapping->counts(cfg);
    mapping->counts({9, 8});
  }

  ou::LayerContext context(double t = 100.0) const {
    return ou::LayerContext{.mapping = mapping.get(), .cost = &cost,
                            .nonideal = &nonideal, .grid = &grid,
                            .elapsed_s = t, .sensitivity = 1.4};
  }

  dnn::LayerDescriptor layer;
  dnn::WeightPattern pattern;
  ou::OuLevelGrid grid{128};
  ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                ou::NonIdealityParams{}};
  ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};
  std::unique_ptr<ou::LayerMapping> mapping;
};

SearchFixture& fixture() {
  static SearchFixture fx;
  return fx;
}

void BM_ResourceBoundedSearch(benchmark::State& state) {
  auto& fx = fixture();
  const auto ctx = fx.context();
  const int k = static_cast<int>(state.range(0));
  std::int64_t evals = 0;
  for (auto _ : state) {
    auto result = ou::resource_bounded_search(ctx, {16, 16}, k);
    evals += result.evaluations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["evals/op"] =
      static_cast<double>(evals) / state.iterations();
}
BENCHMARK(BM_ResourceBoundedSearch)->Arg(1)->Arg(3)->Arg(5);

void BM_ExhaustiveSearch(benchmark::State& state) {
  auto& fx = fixture();
  const auto ctx = fx.context();
  std::int64_t evals = 0;
  for (auto _ : state) {
    auto result = ou::exhaustive_search(ctx);
    evals += result.evaluations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["evals/op"] =
      static_cast<double>(evals) / state.iterations();
}
BENCHMARK(BM_ExhaustiveSearch);

void BM_PolicyPredict(benchmark::State& state) {
  auto& fx = fixture();
  policy::OuPolicy policy(fx.grid);
  const policy::Features phi =
      policy::extract_features(fx.layer, 20, 100.0);
  for (auto _ : state) {
    auto cfg = policy.predict(phi);
    benchmark::DoNotOptimize(cfg);
  }
}
BENCHMARK(BM_PolicyPredict);

void BM_PolicyUpdate50Examples(benchmark::State& state) {
  // One online update: 100 epochs over the full 50-entry buffer.
  auto& fx = fixture();
  policy::ReplayBuffer buffer(50);
  common::Rng rng(3);
  while (!buffer.full()) {
    policy::Features phi;
    phi.layer_position = rng.uniform();
    phi.sparsity = rng.uniform();
    phi.kernel = 3.0 / 7.0;
    phi.log_time = rng.uniform();
    buffer.add(phi, fx.grid.config_at(
                        static_cast<int>(rng.uniform_index(6)),
                        static_cast<int>(rng.uniform_index(6))));
  }
  const nn::Dataset data = buffer.to_dataset(fx.grid);
  nn::TrainOptions options;
  options.epochs = 100;
  options.batch_size = 10;
  for (auto _ : state) {
    policy::OuPolicy policy(fx.grid);
    auto result = policy.train(data, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PolicyUpdate50Examples);

void BM_MapperFirstTouchCounts(benchmark::State& state) {
  // Cost of computing live-block counts for one config from scratch.
  auto& fx = fixture();
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ou::LayerMapping fresh(fx.layer, fx.pattern, 128);
    benchmark::DoNotOptimize(fresh.counts({side, side}));
  }
}
BENCHMARK(BM_MapperFirstTouchCounts)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
