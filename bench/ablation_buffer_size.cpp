// Ablation — training-buffer capacity (paper Sec. III-C: "the size of the
// buffer is important since it determines the training accuracy and
// storage overhead"; Sec. IV picks 50 entries = 0.35 KB).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: training-buffer capacity");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  bench::Stopwatch clock;
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  std::printf("[setup] done in %.1fs\n", clock.seconds());

  const core::HorizonConfig horizon{.runs = 400};
  common::Table table({"buffer entries", "storage (KB)", "policy updates",
                       "mismatch rate %", "EDP (Js)"});
  for (std::size_t capacity : {10u, 25u, 50u, 100u, 200u, 400u}) {
    core::OdinConfig cfg;
    cfg.buffer_capacity = capacity;
    core::OdinController controller(vgg11, nonideal, cost, offline.clone(),
                                    cfg);
    const auto result = core::simulate_odin(controller, horizon);
    const double layers_total = static_cast<double>(horizon.runs) *
                                static_cast<double>(vgg11.layer_count());
    const arch::OverheadParams op;
    table.add_row(
        {common::Table::integer(static_cast<long long>(capacity)),
         common::Table::num(
             static_cast<double>(capacity) * op.bytes_per_entry / 1024.0, 3),
         common::Table::integer(result.policy_updates),
         common::Table::num(100.0 * result.mismatches / layers_total, 3),
         common::Table::num(result.total_edp(), 4)});
  }
  common::print_table("VGG11/CIFAR-10, leave-VGG-out offline policy", table);
  std::printf("\n[shape] small buffers update often on few, recent examples "
              "(noisy policy); very large buffers rarely (or never) fire an "
              "update. 50 entries (0.35 KB, the paper's pick) balances "
              "convergence and storage.\n");
  return 0;
}
