// Tables I & II — PIM architecture specification and ReRAM parameters,
// plus the derived system-level capacity/utilization figures.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Tables I & II: PIM architecture and ReRAM parameters");
  const core::Setup setup = bench::default_setup();

  common::Table t1({"component", "specification", "area (mm^2)"});
  for (const auto& c : arch::tile_components())
    t1.add_row({c.name, c.spec, common::Table::num(c.area_mm2, 4)});
  t1.add_row({"TOTAL (paper: 0.28)", "1.2 GHz, 32 nm tile",
              common::Table::num(arch::tile_area_mm2(), 4)});
  common::print_table("Table I: tile configuration", t1);

  const reram::DeviceParams dev = setup.device;
  common::Table t2({"parameter", "description", "value"});
  t2.add_row({"R_wire", "crossbar wire resistance",
              common::Table::num(dev.r_wire_ohm) + " ohm"});
  t2.add_row({"G_ON / G_OFF", "on/off state conductance",
              common::Table::num(dev.g_on_s * 1e6) + " / " +
                  common::Table::num(dev.g_off_s * 1e6) + " uS"});
  t2.add_row({"v (paper)", "drift coefficient as printed",
              common::Table::num(reram::DeviceParams::paper_drift_coefficient) +
                  " s^-1"});
  t2.add_row({"v (calibrated)",
              "drift exponent reproducing Fig. 6 reprogram counts "
              "(DESIGN.md 4)",
              common::Table::num(dev.drift_coefficient)});
  t2.add_row({"bits/cell", "multi-level cell capacity",
              common::Table::integer(dev.bits_per_cell)});
  common::print_table("Table II: ReRAM crossbar parameters", t2);

  const arch::PimConfig& pim = setup.pim;
  const arch::SystemModel system = setup.make_system();
  common::Table sys({"quantity", "value"});
  sys.add_row({"PEs (mesh)", std::to_string(pim.pes) + " (" +
                                 std::to_string(pim.mesh_x) + "x" +
                                 std::to_string(pim.mesh_y) + ")"});
  sys.add_row({"tiles per PE", common::Table::integer(pim.tiles_per_pe)});
  sys.add_row({"crossbars total", common::Table::integer(pim.total_crossbars())});
  sys.add_row({"weight cells total", common::Table::integer(pim.total_cells())});
  sys.add_row({"system area (mm^2)",
               common::Table::num(pim.system_area_mm2(), 5)});
  sys.add_row({"NoC mean hops (uniform)",
               common::Table::num(system.noc().average_hops(), 4)});
  common::print_table("derived system configuration", sys);

  common::Table util({"workload", "dataset", "crossbars", "utilization %",
                      "NoC energy/inf (uJ)"});
  for (const dnn::DnnModel& model : dnn::paper_workloads()) {
    const auto mapping = system.map(model);
    util.add_row({model.name,
                  data::DatasetSpec::for_kind(model.dataset).name,
                  common::Table::integer(mapping.crossbars_used),
                  common::Table::num(100.0 * mapping.utilization, 3),
                  common::Table::num(
                      mapping.noc_per_inference.energy_j * 1e6, 3)});
  }
  common::print_table("workload placements on the 36-PE system", util);
  return 0;
}
