// Extension — serving resilience: what deadline-aware admission control
// buys (and costs) under overload and drift storms.
//
// Two sweeps, one bench:
//  1. Overload sweep — offered load (per-run search cost inflating service
//     time past the early-horizon inter-arrival gaps) x shed policy
//     (block / shed-oldest / shed-newest, bounded FIFO of 2). Reports p50
//     and p99 sojourn, shed rate and EDP per arm: blocking absorbs the
//     backlog as tail latency, shedding converts it into degraded runs.
//  2. Deadline arm — the drift-burst storm campaign with and without a
//     per-request latency budget. The budget truncates OU searches at
//     best-so-far and defers in-storm reprogram campaigns, bounding p99.
//
// --json PATH writes the summary to PATH (BENCH_serving_resilience.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/resilience.hpp"
#include "core/serving.hpp"
#include "reram/fault_injection.hpp"

using namespace odin;

namespace {

struct ArmStats {
  std::string load;
  std::string shed;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double shed_rate = 0.0;
  double edp = 0.0;
  int shed_runs = 0;
  int runs = 0;
};

std::vector<double> pooled_sojourns(const core::ServingResult& r) {
  std::vector<double> all;
  for (const auto& t : r.tenants)
    all.insert(all.end(), t.sojourn_s.begin(), t.sojourn_s.end());
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  bench::banner(
      "Extension: serving resilience (load shedding + deadline budgets)");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  bench::Stopwatch map_clock;
  const ou::MappedModel resnet =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));
  const ou::MappedModel mobilenet =
      setup.make_mapped(dnn::make_mobilenetv1(data::DatasetKind::kCifar10));
  const std::vector<const ou::MappedModel*> tenants{&resnet, &mobilenet};
  std::printf("[setup] 2 tenants mapped in %.1fs\n", map_clock.seconds());

  core::ServingConfig base;
  base.horizon = core::HorizonConfig{.t_start_s = 1.0, .t_end_s = 1e8,
                                     .runs = 160};
  base.segments = 4;
  base.resilience.enabled = true;
  base.resilience.queue_capacity = 2;
  // The breaker is out of scope for this sweep; park it where it can
  // never trip so the shed/deadline effects are unconfounded.
  base.resilience.breaker.failure_threshold = 1'000'000;

  // ---- 1. overload sweep: offered load x shed policy ------------------
  struct Load {
    const char* name;
    double eval_cost_s;
  };
  const Load loads[] = {{"light", 0.0}, {"moderate", 0.05}, {"heavy", 0.5}};
  struct Shed {
    const char* name;
    core::ShedPolicy policy;
  };
  const Shed sheds[] = {{"block", core::ShedPolicy::kBlock},
                        {"shed-oldest", core::ShedPolicy::kShedOldest},
                        {"shed-newest", core::ShedPolicy::kShedNewest}};

  std::vector<ArmStats> arms;
  common::Table table({"load", "shed policy", "p50 sojourn (s)",
                       "p99 sojourn (s)", "shed rate %", "EDP (Js)"});
  for (const Load& load : loads) {
    for (const Shed& shed : sheds) {
      core::ServingConfig cfg = base;
      cfg.resilience.search_eval_cost_s = load.eval_cost_s;
      cfg.resilience.shed = shed.policy;
      const auto r = core::serve_with_odin(
          tenants, nonideal, cost,
          policy::OuPolicy(ou::OuLevelGrid(128)), cfg);
      ArmStats a;
      a.load = load.name;
      a.shed = shed.name;
      const auto sojourns = pooled_sojourns(r);
      a.p50_s = core::percentile(sojourns, 50.0);
      a.p99_s = core::percentile(sojourns, 99.0);
      a.runs = r.total_runs();
      a.shed_runs = r.total_shed_runs();
      a.shed_rate = a.runs > 0
                        ? static_cast<double>(a.shed_runs) / a.runs
                        : 0.0;
      a.edp = r.total_edp();
      arms.push_back(a);
      table.add_row({a.load, a.shed, common::Table::num(a.p50_s, 4),
                     common::Table::num(a.p99_s, 4),
                     common::Table::num(100.0 * a.shed_rate, 2),
                     common::Table::num(a.edp, 4)});
    }
  }
  common::print_table(
      "overload sweep: 2 tenants, 160 runs, FIFO queue of 2 "
      "(load = simulated per-evaluation search cost)",
      table);

  // ---- 2. deadline arm: drift-burst storm, bounded vs unbounded -------
  reram::FaultScheduleParams storm;
  storm.bursts = {{.start_s = 3.0, .duration_s = 8.0, .multiplier = 1e9}};
  core::ServingConfig unbounded_cfg = base;
  unbounded_cfg.odin.search_steps = 6;
  unbounded_cfg.resilience.search_eval_cost_s = 5e-3;
  unbounded_cfg.resilience.queue_capacity = 1'000;
  core::ServingConfig bounded_cfg = unbounded_cfg;

  reram::FaultInjector unbounded_faults(storm, 0x0d15);
  const auto unbounded = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)),
      unbounded_cfg, &unbounded_faults);
  // Budget: half a reprogram campaign — inference always fits, a storm
  // campaign never does, so the deadline arm serves best-effort instead.
  core::OdinController probe(resnet, nonideal, cost,
                             policy::OuPolicy(ou::OuLevelGrid(128)),
                             unbounded_cfg.odin);
  bounded_cfg.resilience.default_slo_s =
      0.5 * probe.full_reprogram_cost().latency_s;
  reram::FaultInjector bounded_faults(storm, 0x0d15);
  const auto bounded = core::serve_with_odin(
      tenants, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)),
      bounded_cfg, &bounded_faults);

  const double p99_unbounded = core::percentile(pooled_sojourns(unbounded),
                                                99.0);
  const double p99_bounded = core::percentile(pooled_sojourns(bounded),
                                              99.0);
  common::Table deadline_table({"arm", "p99 sojourn (s)", "reprograms",
                                "deferred", "searches truncated",
                                "deadline misses"});
  auto add_deadline_row = [&](const char* label,
                              const core::ServingResult& r, double p99) {
    int reprograms = 0;
    for (const auto& t : r.tenants) reprograms += t.reprograms;
    deadline_table.add_row(
        {label, common::Table::num(p99, 5),
         common::Table::integer(reprograms),
         common::Table::integer(r.total_deferred_reprograms()),
         common::Table::integer(r.total_searches_truncated()),
         common::Table::integer(r.total_deadline_misses())});
  };
  add_deadline_row("unbounded", unbounded, p99_unbounded);
  add_deadline_row("deadline (0.5x reprogram)", bounded, p99_bounded);
  common::print_table("drift-burst storm: per-request budgets vs none",
                      deadline_table);
  std::printf("\n[shape] under the storm the unbounded walk pays a full "
              "search plus a reprogram campaign per run; the budgeted walk "
              "truncates searches at best-so-far and defers campaigns to "
              "after the burst, so its p99 is %.1fx tighter here.\n",
              p99_bounded > 0.0 ? p99_unbounded / p99_bounded : 0.0);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"ResNet18 + MobileNetV1 / CIFAR-10\",\n"
                 "  \"horizon_runs\": %d,\n"
                 "  \"queue_capacity\": 2,\n"
                 "  \"overload_sweep\": [\n",
                 base.horizon.runs);
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const ArmStats& a = arms[i];
      std::fprintf(f,
                   "    {\"load\": \"%s\", \"shed_policy\": \"%s\", "
                   "\"p50_sojourn_s\": %.6e, \"p99_sojourn_s\": %.6e, "
                   "\"shed_runs\": %d, \"runs\": %d, "
                   "\"shed_rate\": %.4f, \"edp\": %.6e}%s\n",
                   a.load.c_str(), a.shed.c_str(), a.p50_s, a.p99_s,
                   a.shed_runs, a.runs, a.shed_rate, a.edp,
                   i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n"
        "  \"deadline_storm\": {\n"
        "    \"burst\": {\"start_s\": 3.0, \"duration_s\": 8.0, "
        "\"multiplier\": 1e9},\n"
        "    \"slo_s\": %.6e,\n"
        "    \"p99_unbounded_s\": %.6e,\n"
        "    \"p99_bounded_s\": %.6e,\n"
        "    \"p99_ratio\": %.3f,\n"
        "    \"bounded_deferred_reprograms\": %d,\n"
        "    \"bounded_searches_truncated\": %d,\n"
        "    \"unbounded_searches_truncated\": %d\n"
        "  }\n"
        "}\n",
        bounded_cfg.resilience.default_slo_s, p99_unbounded, p99_bounded,
        p99_bounded > 0.0 ? p99_unbounded / p99_bounded : 0.0,
        bounded.total_deferred_reprograms(),
        bounded.total_searches_truncated(),
        unbounded.total_searches_truncated());
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return 0;
}
