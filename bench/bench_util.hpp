// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>

#include "core/experiment.hpp"

namespace odin::bench {

/// The single Setup every bench uses (Tables I-II + DESIGN.md §4).
inline core::Setup default_setup() { return core::Setup{}; }

/// Wall-clock helper for reporting bench phase durations.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const char* what) {
  std::printf("\n==========================================================\n"
              "%s\n"
              "==========================================================\n",
              what);
}

}  // namespace odin::bench
