// Micro-benchmarks (google-benchmark) for the behavioural crossbar: analog
// OU MVM across OU shapes and ADC precisions, and the full-array pass.
// Each kernel benchmark has a *Reference twin that times the original
// per-cell kernel (tests/reference_kernel.hpp) on identical state;
// tools/run_bench.sh pairs them into the old-vs-new speedup table of
// BENCH_mvm_kernel.json.
#include <benchmark/benchmark.h>

#include "reference_kernel.hpp"
#include "reram/crossbar.hpp"

using namespace odin;

namespace {

reram::Crossbar& programmed_crossbar() {
  static reram::Crossbar xbar = [] {
    reram::Crossbar x(128, reram::DeviceParams{});
    common::Rng rng(9);
    std::vector<double> w(128 * 128);
    for (double& v : w)
      v = rng.bernoulli(0.4) ? rng.uniform(-1.0, 1.0) : 0.0;
    x.program(w, 128, 128, 0.0);
    return x;
  }();
  return xbar;
}

std::vector<double> input_vector(int n) {
  common::Rng rng(11);
  std::vector<double> in(static_cast<std::size_t>(n));
  for (double& v : in) v = rng.uniform();
  return in;
}

void BM_MvmSingleOu(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  const auto in = input_vector(rows);
  const int bits = 6;
  for (auto _ : state) {
    auto out = xbar.mvm_ou(in, 0, rows, 0, cols, 1.0, bits);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_MvmSingleOu)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64});

void BM_MvmFullArrayByOuShape(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const int side = static_cast<int>(state.range(0));
  const auto in = input_vector(128);
  for (auto _ : state) {
    auto out = xbar.mvm(in, side, side, 1.0, 6);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_MvmFullArrayByOuShape)->Arg(4)->Arg(16)->Arg(128);

void BM_IdealMvm(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const auto in = input_vector(128);
  for (auto _ : state) {
    auto out = xbar.ideal_mvm(in);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IdealMvm);

void BM_WeightRmsError(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbar.weight_rms_error(1e6, 16, 16));
  }
}
BENCHMARK(BM_WeightRmsError);

void BM_MvmSingleOuReference(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  const auto in = input_vector(rows);
  const int bits = 6;
  for (auto _ : state) {
    auto out = testref::mvm_ou(xbar, in, 0, rows, 0, cols, 1.0, bits);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_MvmSingleOuReference)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64});

void BM_MvmFullArrayByOuShapeReference(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const int side = static_cast<int>(state.range(0));
  const auto in = input_vector(128);
  for (auto _ : state) {
    auto out = testref::mvm(xbar, in, side, side, 1.0, 6);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_MvmFullArrayByOuShapeReference)->Arg(4)->Arg(16)->Arg(128);

void BM_IdealMvmReference(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  const auto in = input_vector(128);
  for (auto _ : state) {
    auto out = testref::ideal_mvm(xbar, in);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IdealMvmReference);

void BM_WeightRmsErrorReference(benchmark::State& state) {
  auto& xbar = programmed_crossbar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(testref::weight_rms_error(xbar, 1e6, 16, 16));
  }
}
BENCHMARK(BM_WeightRmsErrorReference);

void BM_Reprogram(benchmark::State& state) {
  reram::Crossbar xbar(128, reram::DeviceParams{});
  common::Rng rng(13);
  std::vector<double> w(128 * 128);
  for (double& v : w) v = rng.uniform(-1.0, 1.0);
  double t = 0.0;
  for (auto _ : state) {
    xbar.program(w, 128, 128, t);
    t += 1.0;
    benchmark::DoNotOptimize(xbar.programmed_cells());
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_Reprogram);

}  // namespace

BENCHMARK_MAIN();
