// Ablation — activation-sparsity exploitation modes (paper Sec. II: prior
// OU work exploits weight AND activation sparsity).
//
// Three pipelines: ignore activations; skip an OU cycle when its whole
// input slice is zero (free but only effective for tiny OUs); compact
// non-zero activations (effective at every OU size but pays index fetches).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

namespace {

const char* mode_name(ou::ActivationHandling mode) {
  switch (mode) {
    case ou::ActivationHandling::kNone: return "none";
    case ou::ActivationHandling::kRowSkip: return "row-skip";
    case ou::ActivationHandling::kCompaction: return "compaction";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Ablation: activation-sparsity handling");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const core::HorizonConfig horizon{.runs = 200};

  common::Table table({"mode", "16x16 E_inf (mJ)", "16x16 L_inf (s)",
                       "Odin E_inf (mJ)", "Odin L_inf (s)",
                       "Odin EDP advantage"});
  for (ou::ActivationHandling mode :
       {ou::ActivationHandling::kNone, ou::ActivationHandling::kRowSkip,
        ou::ActivationHandling::kCompaction}) {
    ou::CostParams params = setup.cost_params;
    params.activation_handling = mode;
    const ou::OuCostModel cost(params, setup.device);

    const auto base = core::simulate_homogeneous(vgg11, nonideal, cost,
                                                 {16, 16}, horizon);
    core::OdinController controller(vgg11, nonideal, cost,
                                    policy::OuPolicy(ou::OuLevelGrid(128)));
    const auto odin = core::simulate_odin(controller, horizon);

    table.add_row({mode_name(mode),
                   common::Table::num(base.inference.energy_j * 1e3, 4),
                   common::Table::num(base.inference.latency_s, 4),
                   common::Table::num(odin.inference.energy_j * 1e3, 4),
                   common::Table::num(odin.inference.latency_s, 4),
                   common::Table::num(base.total_edp() / odin.total_edp(),
                                      3)});
  }
  common::print_table("VGG11/CIFAR-10 over [t0, 1e8 s]", table);
  std::printf("\n[shape] row-skipping barely helps at standard OU heights "
              "(P[all R inputs zero] = s^R); compaction cuts cycles by the "
              "activation sparsity at every size — and shifts Odin's "
              "optimum; Odin stays ahead in every mode.\n");
  return 0;
}
