// Extension — fault-injection campaign: serving a wearing, faulting device.
//
// Every scheme serves the same 1e8 s horizon on a device whose endurance is
// deliberately poor (characteristic lifetime ~80 write campaigns instead of
// 2e5), whose wordline/bitline drivers fail stochastically per campaign,
// with one mid-horizon drift burst and a 15% write-verify failure rate.
// Prior-work homogeneous baselines see the measured fault floor in their
// reprogram check but have no recovery policy: once permanent faults push
// the floor over eta they reprogram on every run, each campaign wearing the
// array further — a thrash spiral. The Odin controller's recovery layer
// (recoverability gate, bounded retries, degraded mode with guardrailed
// eta-relaxation) completes the horizon with a bounded write budget.
//
// --json PATH writes the per-scheme summary to PATH (BENCH_faults.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/accuracy.hpp"
#include "reram/fault_injection.hpp"

using namespace odin;

namespace {

constexpr std::uint64_t kFaultSeed = 0xfa117;

/// The shared fault schedule: every scheme gets a fresh injector with the
/// same seed, so the underlying lifetime population and burst windows are
/// identical and only the scheme's own campaign history differs.
reram::FaultScheduleParams campaign_schedule() {
  reram::FaultScheduleParams p;
  p.endurance.characteristic_cycles = 80.0;
  p.endurance.shape = 1.8;
  p.tracked_cells = 4096;
  p.wordline_fail_rate = 2e-4;
  p.bitline_fail_rate = 2e-4;
  p.array_lines = 128;
  p.write_fail_rate = 0.15;
  p.bursts = {{.start_s = 1e6, .duration_s = 5e6, .multiplier = 8.0}};
  return p;
}

struct SchemeOutcome {
  std::string label;
  common::EnergyLatency total;
  int reprograms = 0;
  int retries = 0;
  int degraded_runs = 0;
  int write_verify_failures = 0;
  double final_fault_fraction = 0.0;
  double mean_accuracy = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  bench::banner("Extension: fault-injection campaign (wearing device)");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const core::AccuracyModel accuracy{core::AccuracyParams{}};

  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const core::HorizonConfig horizon{};
  const auto schedule = core::run_schedule(horizon);

  std::vector<SchemeOutcome> outcomes;

  for (ou::OuConfig cfg : core::paper_baseline_configs()) {
    reram::FaultInjector faults(campaign_schedule(), kFaultSeed);
    core::HomogeneousRunner runner(vgg11, nonideal, cost, cfg, true,
                                   &faults);
    SchemeOutcome out;
    out.label = cfg.to_string();
    double acc_sum = 0.0;
    for (double t : schedule) {
      const core::BaselineRunResult run = runner.run_inference(t);
      out.total += run.inference + run.reprogram;
      acc_sum += accuracy.estimate_homogeneous(
          vgg11, cfg, run.elapsed_s * faults.drift_time_multiplier(t),
          nonideal, faults.fault_fraction());
    }
    out.reprograms = runner.reprogram_count();
    out.final_fault_fraction = faults.fault_fraction();
    out.mean_accuracy = acc_sum / static_cast<double>(schedule.size());
    outcomes.push_back(std::move(out));
  }

  // Two Odin arms: a fresh device, and one inherited after 12 campaigns of
  // prior wear (~3% stuck — over the stuck-cell budget), which forces the
  // degraded path: recoverability gate, guardrailed eta-relaxation,
  // completed horizon with at most one wasted reprogram.
  for (const auto& [label, prior_wear] :
       {std::pair<const char*, int>{"Odin", 0}, {"Odin (pre-worn)", 12}}) {
    reram::FaultInjector faults(campaign_schedule(), kFaultSeed);
    for (int k = 0; k < prior_wear; ++k) faults.program_campaign();
    core::OdinController controller(vgg11, nonideal, cost,
                                    policy::OuPolicy(ou::OuLevelGrid(128)),
                                    core::OdinConfig{}, &faults);
    SchemeOutcome out;
    out.label = label;
    double acc_sum = 0.0;
    for (double t : schedule) {
      const core::RunResult run = controller.run_inference(t);
      out.total += run.inference + run.reprogram;
      out.write_verify_failures += run.write_verify_failed ? 1 : 0;
      acc_sum += run.estimated_accuracy;
    }
    out.reprograms = controller.reprogram_count();
    out.retries = controller.retry_count();
    out.degraded_runs = controller.degraded_run_count();
    out.final_fault_fraction = controller.measured_fault_fraction();
    out.mean_accuracy = acc_sum / static_cast<double>(schedule.size());
    outcomes.push_back(std::move(out));
  }

  common::Table table({"scheme", "EDP (J*s)", "reprograms", "retries",
                       "degraded runs", "final fault frac",
                       "mean accuracy"});
  for (const SchemeOutcome& o : outcomes)
    table.add_row({o.label, common::Table::num(o.total.edp(), 4),
                   common::Table::integer(o.reprograms),
                   common::Table::integer(o.retries),
                   common::Table::integer(o.degraded_runs),
                   common::Table::num(o.final_fault_fraction, 4),
                   common::Table::num(o.mean_accuracy, 4)});
  common::print_table(
      "VGG11/CIFAR-10, 1e8 s horizon, wearing device (eta = 80 campaigns)",
      table);
  std::printf(
      "\n[shape] the homogeneous baselines reprogram into their own fault "
      "floor — every campaign raises it, so late in the horizon they thrash "
      "(reprogram every run) while accuracy collapses. Odin's recovery "
      "layer stops reprogramming once read-verify shows it cannot help, "
      "serves degraded under the guardrailed eta-relaxation, and spends an "
      "order of magnitude less write budget.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    const reram::FaultScheduleParams sched = campaign_schedule();
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"VGG11/CIFAR-10\",\n"
                 "  \"horizon_s\": %.3e,\n"
                 "  \"runs\": %d,\n"
                 "  \"fault_schedule\": {\n"
                 "    \"characteristic_cycles\": %.1f,\n"
                 "    \"weibull_shape\": %.2f,\n"
                 "    \"wordline_fail_rate\": %.2e,\n"
                 "    \"bitline_fail_rate\": %.2e,\n"
                 "    \"write_fail_rate\": %.2f,\n"
                 "    \"burst\": {\"start_s\": %.2e, \"duration_s\": %.2e, "
                 "\"multiplier\": %.1f}\n"
                 "  },\n"
                 "  \"schemes\": [\n",
                 horizon.t_end_s, horizon.runs,
                 sched.endurance.characteristic_cycles, sched.endurance.shape,
                 sched.wordline_fail_rate, sched.bitline_fail_rate,
                 sched.write_fail_rate, sched.bursts[0].start_s,
                 sched.bursts[0].duration_s, sched.bursts[0].multiplier);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const SchemeOutcome& o = outcomes[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"energy_j\": %.6e, "
                   "\"latency_s\": %.6e, \"edp\": %.6e, "
                   "\"reprograms\": %d, \"retries\": %d, "
                   "\"degraded_runs\": %d, \"write_verify_failures\": %d, "
                   "\"final_fault_fraction\": %.6f, "
                   "\"mean_accuracy\": %.6f}%s\n",
                   o.label.c_str(), o.total.energy_j, o.total.latency_s,
                   o.total.edp(), o.reprograms, o.retries, o.degraded_runs,
                   o.write_verify_failures, o.final_fault_fraction,
                   o.mean_accuracy,
                   i + 1 < outcomes.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return 0;
}
