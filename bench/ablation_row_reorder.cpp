// Ablation — offline row reordering (PattPIM / RePIM-style, paper Sec. II):
// how much OU-cycle reduction does clustering similar zero patterns buy,
// and what index storage does it drag in? The paper's point: these
// reorderings are computed offline per network, which conflicts with
// adapting to unseen DNNs at runtime; Odin forgoes them and still wins via
// OU sizing alone.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ou/reordering.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: offline row reordering vs OU skipping");
  const core::Setup setup = bench::default_setup();
  const ou::MappedModel resnet18 =
      setup.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));

  common::Table table({"OU", "live blocks", "after reorder", "reduction",
                       "perm. storage (KB)"});
  std::int64_t perm_bits_total = 0;
  for (ou::OuConfig cfg : {ou::OuConfig{4, 16}, ou::OuConfig{8, 16},
                           ou::OuConfig{16, 16}, ou::OuConfig{32, 32}}) {
    std::int64_t before_total = 0, after_total = 0;
    perm_bits_total = 0;
    for (std::size_t j = 0; j < resnet18.layer_count(); ++j) {
      const auto& layer = resnet18.model().layers[j];
      const auto& pattern = resnet18.pruned().patterns[j];
      const auto order = ou::similarity_row_order(pattern);
      const auto reordered = ou::apply_row_order(pattern, order);
      const ou::LayerMapping before(layer, pattern,
                                    resnet18.crossbar_size());
      const ou::LayerMapping after(layer, reordered,
                                   resnet18.crossbar_size());
      before_total += before.counts(cfg).total_ou_cycles;
      after_total += after.counts(cfg).total_ou_cycles;
      perm_bits_total += ou::permutation_storage_bits(layer.fan_in);
    }
    table.add_row({cfg.to_string(), common::Table::integer(before_total),
                   common::Table::integer(after_total),
                   common::Table::num(
                       static_cast<double>(before_total) /
                           static_cast<double>(after_total), 4),
                   common::Table::num(
                       static_cast<double>(perm_bits_total) / 8e3, 4)});
  }
  common::print_table(
      "ResNet18/CIFAR-10: OU cycles before/after similarity reordering",
      table);
  std::printf("\n[shape] reordering helps most at fine row granularity "
              "(clustered dead rows form whole skippable blocks) and fades "
              "at coarse OUs; it costs a per-network input-index table "
              "(%.1f KB here) computed offline — the runtime-adaptation "
              "conflict the paper raises in Sec. II.\n",
              static_cast<double>(perm_bits_total) / 8e3);
  return 0;
}
