// Ablation — entropy-gated search (extension; cf. the authors'
// uncertainty-aware online learning [27]).
//
// Vanilla Algorithm 1 runs the resource-bounded search for every layer of
// every run. Once the policy has converged, most searches just confirm its
// prediction. Gating the search on the policy's predictive entropy trades a
// little EDP optimality for a large cut in search work.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

int main() {
  bench::banner("Ablation: entropy-gated search");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();

  bench::Stopwatch clock;
  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  policy::OuPolicy offline =
      core::offline_policy_excluding(setup, dnn::Family::kVgg);
  std::printf("[setup] done in %.1fs\n", clock.seconds());

  const core::HorizonConfig horizon{.runs = 400};
  common::Table table({"entropy gate", "EDP (Js)", "EDP vs no gate",
                       "searches skipped", "skip %", "policy updates"});
  double edp_no_gate = 0.0;
  for (double gate : {-1.0, 0.05, 0.15, 0.3, 0.5, 0.9}) {
    core::OdinConfig cfg;
    cfg.entropy_gate = gate;
    core::OdinController controller(vgg11, nonideal, cost, offline.clone(),
                                    cfg);
    const auto result = core::simulate_odin(controller, horizon);
    if (gate < 0.0) edp_no_gate = result.total_edp();
    const auto total_layers = static_cast<double>(
        horizon.runs * static_cast<int>(vgg11.layer_count()));
    table.add_row({gate < 0.0 ? "off" : common::Table::num(gate, 2),
                   common::Table::num(result.total_edp(), 4),
                   common::Table::num(result.total_edp() / edp_no_gate, 4),
                   common::Table::integer(result.searches_skipped),
                   common::Table::num(
                       100.0 * result.searches_skipped / total_layers, 3),
                   common::Table::integer(result.policy_updates)});
  }
  common::print_table("VGG11/CIFAR-10 (offline policy from other families)",
                      table);
  std::printf("\n[shape] moderate gates skip a large share of searches at "
              "single-digit-percent EDP cost; an over-eager gate freezes "
              "learning (no mismatches -> no training data) and pays more."
              "\n");
  return 0;
}
