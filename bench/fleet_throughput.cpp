// Extension — fleet-scale sharded serving throughput.
//
// Ten synthetic tenants of mixed width are served on the 36-PE mesh at
// shard counts 1, 4, 9 and 36 (core/fleet.hpp): tenants are placed
// NoC-/wear-aware, each shard runs the full resilience serving loop
// concurrently, and the table reports aggregate throughput (total runs
// over the slowest shard's busy time), run-weighted per-request EDP and
// the pooled p99 deadline slack. A placement-oblivious round-robin arm at
// 9 shards isolates what placement buys: with ten tenants on nine shards,
// round-robin (t % 9) drops the two widest tenants (0 and 9) onto the
// same shard, and with two traffic segments per tenant their bursts are
// back-to-back in time (segment 9 is tenant 9, segment 10 is tenant 0
// again) — the shared device backlogs and the sojourn tail blows up. The
// aware placement balances the heavyweights onto different shards, so
// neither inherits the other's backlog.
//
// The headline claims this bench exists to pin (BENCH_fleet.json):
//  * sharding scales — aggregate images/s at 9 shards is >= 3x the
//    single-shard loop while per-request EDP stays within 5% (the same
//    physical serves, just spread over the mesh);
//  * placement matters — the NoC-aware fleet's pooled p99 slack beats the
//    placement-oblivious round-robin fleet's at the same shard count.
//
// --json PATH writes the summary (BENCH_fleet.json); --build-type and
// --git-sha stamp provenance into it (tools/run_bench.sh passes both).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/fleet.hpp"
#include "policy/offline.hpp"

using namespace odin;

namespace {

/// A 6-layer CNN-shaped tenant with every channel dimension scaled by
/// `scale` — the same shape the core tests use, wide enough at scale 6 to
/// span several PEs of a shard block.
dnn::DnnModel synthetic_model(const std::string& name, int scale) {
  dnn::DnnModel model;
  model.name = name;
  model.family = dnn::Family::kVgg;
  model.dataset = data::DatasetKind::kCifar10;
  struct Spec {
    const char* layer_name;
    int in_ch, out_ch, kernel, positions;
  };
  const Spec specs[] = {
      {"conv1", 3, 32, 3, 16 * 16},  {"conv2", 32, 64, 3, 8 * 8},
      {"skip", 32, 64, 1, 8 * 8},    {"conv3", 64, 128, 3, 4 * 4},
      {"conv4", 128, 128, 3, 4 * 4}, {"fc", 128, 10, 1, 1},
  };
  int index = 0;
  for (const Spec& s : specs) {
    dnn::LayerDescriptor l;
    l.name = s.layer_name;
    l.type = s.kernel == 1 && s.positions == 1
                 ? dnn::LayerType::kFullyConnected
                 : dnn::LayerType::kConv;
    l.index = index++;
    l.kernel = s.kernel;
    l.in_channels = s.in_ch * scale;
    l.out_channels = s.out_ch * scale;
    l.fan_in = s.in_ch * scale * s.kernel * s.kernel;
    l.outputs = s.out_ch * scale;
    l.spatial_positions = s.positions;
    model.layers.push_back(std::move(l));
  }
  return model;
}

struct Arm {
  int shards = 0;
  bool noc_aware = true;
  double images_per_s = 0.0;
  double edp_per_request = 0.0;
  double p99_slack_s = 0.0;
  double makespan_s = 0.0;
  double load_imbalance = 0.0;
  int pipelined_runs = 0;
  double wall_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* build_type = "unknown";
  const char* git_sha = "unknown";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--build-type") == 0) build_type = argv[i + 1];
    if (std::strcmp(argv[i], "--git-sha") == 0) git_sha = argv[i + 1];
  }

  bench::banner("Extension: fleet-scale sharded serving on the 36-PE mesh");

  // Ten tenants, mixed widths. Indices 0 and 9 are the widest so the
  // round-robin baseline at 9 shards (t % 9) pairs them on shard 0 —
  // exactly the collision NoC-aware placement exists to avoid.
  const int scales[] = {6, 1, 2, 1, 3, 1, 2, 1, 2, 6};
  std::vector<ou::MappedModel> models;
  bench::Stopwatch map_clock;
  for (std::size_t i = 0; i < std::size(scales); ++i) {
    const std::string name = "tenant" + std::to_string(i);
    models.emplace_back(
        dnn::prune_model(synthetic_model(name, scales[i]),
                         0x51ee7 + static_cast<std::uint64_t>(i)),
        128);
  }
  std::vector<const ou::MappedModel*> tenants;
  for (const ou::MappedModel& m : models) tenants.push_back(&m);
  std::printf("[setup] %zu tenants (widths x1..x6) mapped in %.1fs\n",
              tenants.size(), map_clock.seconds());

  const ou::NonIdealityModel nonideal{reram::DeviceParams{},
                                      ou::NonIdealityParams{}};
  const ou::OuCostModel cost{ou::CostParams{}, reram::DeviceParams{}};

  // Offline-bootstrapped policy (the documented serve_with_odin usage):
  // a design-time model outside the tenant list labels the training set,
  // so every arm starts from the same near-converged policy and the
  // serving-time learning chains (one per shard) barely diverge.
  bench::Stopwatch boot_clock;
  const ou::MappedModel design_model(
      dnn::prune_model(synthetic_model("design", 4), 0xde51), 128);
  const ou::MappedModel* known[] = {&design_model};
  policy::OfflineTrainConfig boot;
  boot.time_samples = 4;
  boot.t_start_s = 1.0;
  boot.t_end_s = 2.0;
  policy::OuPolicy bootstrapped = policy::train_offline_policy(
      known, nonideal, cost, ou::OuLevelGrid(128), boot);
  std::printf("[setup] offline policy bootstrap in %.1fs\n",
              boot_clock.seconds());

  // Queueing scenario: a burst horizon whose inter-arrival gaps sit well
  // below every tenant's service time, so each segment queues internally
  // and a backlog left at the end of one segment spills into the next
  // segment of the SAME shard. Two segments per tenant make segments 9
  // and 10 (tenant 9 then tenant 0, the two heavyweights) adjacent in
  // time. Deep blocking queue, untrippable breaker and a generous SLO so
  // slack pools are meaningful. No flat per-eval search cost — a
  // width-independent service term would make tenant COUNT the balance
  // that matters and mask what placement buys.
  core::FleetConfig base;
  base.serving.horizon =
      core::HorizonConfig{.t_start_s = 1.0, .t_end_s = 1.05, .runs = 400};
  base.serving.segments = 20;
  base.serving.resilience.enabled = true;
  base.serving.resilience.queue_capacity = 10'000;
  base.serving.resilience.shed = core::ShedPolicy::kBlock;
  base.serving.resilience.breaker.failure_threshold = 1'000'000;
  base.serving.resilience.default_slo_s = 1.0;

  auto run_arm = [&](int shards, bool noc_aware) {
    core::FleetConfig cfg = base;
    cfg.shards = shards;
    cfg.noc_aware = noc_aware;
    bench::Stopwatch clock;
    const core::FleetResult fleet = core::serve_fleet(
        tenants, nonideal, cost, bootstrapped.clone(), cfg);
    Arm arm;
    arm.shards = shards;
    arm.noc_aware = noc_aware;
    arm.wall_s = clock.seconds();
    arm.images_per_s = fleet.aggregate_images_per_s();
    arm.edp_per_request = fleet.edp_per_request();
    arm.p99_slack_s = fleet.slack_percentile(99.0);
    arm.makespan_s = fleet.makespan_s();
    arm.load_imbalance = fleet.placement.load_imbalance;
    for (const core::ServingResult& r : fleet.shards)
      arm.pipelined_runs += r.total_pipelined_runs();
    return arm;
  };

  std::vector<Arm> arms;
  for (int shards : {1, 4, 9, 36}) arms.push_back(run_arm(shards, true));
  arms.push_back(run_arm(9, false));  // the placement-oblivious baseline

  common::Table table({"shards", "placement", "images/s", "per-req EDP (Js)",
                       "p99 slack (s)", "makespan (s)", "imbalance",
                       "pipelined"});
  for (const Arm& a : arms)
    table.add_row({common::Table::integer(a.shards),
                   a.noc_aware ? "NoC-aware" : "round-robin",
                   common::Table::num(a.images_per_s, 4),
                   common::Table::num(a.edp_per_request, 6),
                   common::Table::num(a.p99_slack_s, 4),
                   common::Table::num(a.makespan_s, 4),
                   common::Table::num(a.load_imbalance, 3),
                   common::Table::integer(a.pipelined_runs)});
  common::print_table(
      "shard sweep: 10 tenants, 400 runs, service-bound resilience walk",
      table);

  const Arm& one = arms[0];
  const Arm& nine = arms[2];
  const Arm& oblivious = arms.back();
  const double speedup =
      one.images_per_s > 0.0 ? nine.images_per_s / one.images_per_s : 0.0;
  const double edp_drift_pct =
      one.edp_per_request > 0.0
          ? 100.0 * (nine.edp_per_request - one.edp_per_request) /
                one.edp_per_request
          : 0.0;
  const double slack_gain_s = nine.p99_slack_s - oblivious.p99_slack_s;
  std::printf(
      "\n[headline] 1 -> 9 shards: %.2fx aggregate throughput, per-request "
      "EDP drift %+.2f%%; NoC-aware p99 slack beats round-robin by %.4f s "
      "at 9 shards\n",
      speedup, edp_drift_pct, slack_gain_s);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"build_type\": \"%s\",\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"note\": \"10 mixed-width tenants, 400 runs, "
                 "service-bound resilience walk; aggregate images/s = total "
                 "runs over the slowest shard's busy time; per-request EDP "
                 "is run-weighted across shards; p99 slack pooled over "
                 "every SLO-bearing tenant\",\n"
                 "  \"shard_sweep\": [\n",
                 build_type, git_sha);
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const Arm& a = arms[i];
      std::fprintf(
          f,
          "    {\"shards\": %d, \"placement\": \"%s\", "
          "\"images_per_s\": %.4e, \"edp_per_request_js\": %.6e, "
          "\"p99_slack_s\": %.6e, \"makespan_s\": %.6e, "
          "\"load_imbalance\": %.3f, \"pipelined_runs\": %d, "
          "\"bench_wall_s\": %.3f}%s\n",
          a.shards, a.noc_aware ? "noc_aware" : "round_robin",
          a.images_per_s, a.edp_per_request, a.p99_slack_s, a.makespan_s,
          a.load_imbalance, a.pipelined_runs, a.wall_s,
          i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"headline\": {\n"
                 "    \"speedup_1_to_9_shards\": %.3f,\n"
                 "    \"edp_drift_1_to_9_pct\": %.3f,\n"
                 "    \"noc_aware_p99_slack_gain_s\": %.6e\n"
                 "  }\n"
                 "}\n",
                 speedup, edp_drift_pct, slack_gain_s);
    std::fclose(f);
    std::printf("[bench] wrote %s\n", json_path);
  }
  return 0;
}
