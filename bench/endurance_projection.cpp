// Extension — endurance projection: the write-wear cost of reprogramming.
//
// The paper's Fig. 6 counts reprogramming events for energy; each event is
// also a whole-array write campaign against a finite endurance budget.
// Projecting the measured reprogram cadences through a Weibull wear model
// gives device lifetime to a 0.1% stuck-cell budget — a second, compounding
// advantage of Odin's reprogram-avoidance that the paper leaves on the
// table.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "reram/endurance.hpp"

using namespace odin;

int main() {
  bench::banner("Extension: endurance (write wear) projection");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const reram::EnduranceModel endurance;

  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const core::HorizonConfig horizon{};

  common::Table table({"scheme", "reprograms / 1e8 s",
                       "stuck cells after horizon (ppm)",
                       "lifetime to 0.1% budget (years)"});
  auto add_row = [&](const std::string& label, int reprograms) {
    const double frac =
        endurance.failure_fraction(static_cast<double>(reprograms));
    const double life_s = endurance.lifetime_seconds(
        static_cast<double>(reprograms), horizon.t_end_s);
    table.add_row({label, common::Table::integer(reprograms),
                   common::Table::num(frac * 1e6, 4),
                   std::isinf(life_s)
                       ? "unbounded"
                       : common::Table::num(life_s / 3.15e7, 4)});
  };

  for (ou::OuConfig cfg : core::paper_baseline_configs()) {
    const auto agg = core::simulate_homogeneous(vgg11, nonideal, cost, cfg,
                                                horizon);
    add_row(cfg.to_string(), agg.reprograms);
  }
  core::OdinController controller(vgg11, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)));
  const auto odin = core::simulate_odin(controller, horizon);
  add_row("Odin", odin.reprograms);

  common::print_table(
      "VGG11/CIFAR-10: Weibull wear (eta = 2e5 campaigns, beta = 1.8)",
      table);
  std::printf("\n[shape] lifetime scales inversely with the reprogram "
              "cadence: the 16x16 baseline spends ~48x Odin's write budget "
              "per horizon, so Odin's device lasts ~48x longer to the same "
              "stuck-cell ceiling — reprogram avoidance compounds beyond "
              "the EDP the paper reports.\n");
  return 0;
}
