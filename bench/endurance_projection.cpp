// Extension — endurance projection: the write-wear cost of reprogramming,
// and what wear leveling buys back.
//
// The paper's Fig. 6 counts reprogramming events for energy; each event is
// also a whole-array write campaign against a finite endurance budget.
// Projecting the measured reprogram cadences through a Weibull wear model
// gives device lifetime to a 0.1% stuck-cell budget — a second, compounding
// advantage of Odin's reprogram-avoidance that the paper leaves on the
// table.
//
// The leveled arm projects the same cadences through the wear-leveling
// ladder (DESIGN.md §15): rotation spreads each campaign over array + spare
// rows and the spare pool absorbs the first worn rows outright, so the
// leveled device reaches the same stuck-cell ceiling years later. Leveling
// is free at serving time — the equal-EDP check below runs the same Odin
// horizon with and without a leveling injector and requires identical EDP.
//
// --json PATH writes the per-scheme summary to PATH (BENCH_endurance.json).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "reram/endurance.hpp"
#include "reram/fault_injection.hpp"

using namespace odin;

namespace {

constexpr int kArrayRows = 128;
constexpr int kRowCells = 128;
constexpr int kSpareRows = 32;  ///< headline leveled arm's pool
constexpr double kYear = 3.15e7;

struct SchemeRow {
  std::string label;
  int reprograms = 0;
  double stuck_ppm = 0.0;
  double life_unleveled_s = 0.0;
  double life_leveled_s = 0.0;

  double extension() const {
    return life_unleveled_s > 0.0 && std::isfinite(life_unleveled_s)
               ? life_leveled_s / life_unleveled_s
               : 1.0;
  }
};

std::string years(double seconds) {
  return std::isinf(seconds) ? "unbounded"
                             : common::Table::num(seconds / kYear, 4);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  bench::banner(
      "Extension: endurance (write wear) projection + wear leveling");
  const core::Setup setup = bench::default_setup();
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const reram::EnduranceModel endurance;

  const ou::MappedModel vgg11 =
      setup.make_mapped(dnn::make_vgg11(data::DatasetKind::kCifar10));
  const core::HorizonConfig horizon{};

  std::vector<SchemeRow> rows;
  auto add_row = [&](const std::string& label, int reprograms) {
    SchemeRow row;
    row.label = label;
    row.reprograms = reprograms;
    row.stuck_ppm =
        endurance.failure_fraction(static_cast<double>(reprograms)) * 1e6;
    row.life_unleveled_s = endurance.lifetime_seconds(
        static_cast<double>(reprograms), horizon.t_end_s);
    row.life_leveled_s = endurance.leveled_lifetime_seconds(
        static_cast<double>(reprograms), horizon.t_end_s, kArrayRows,
        kSpareRows, kRowCells);
    rows.push_back(std::move(row));
  };

  for (ou::OuConfig cfg : core::paper_baseline_configs()) {
    const auto agg = core::simulate_homogeneous(vgg11, nonideal, cost, cfg,
                                                horizon);
    add_row(cfg.to_string(), agg.reprograms);
  }
  core::OdinController controller(vgg11, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)));
  const auto odin = core::simulate_odin(controller, horizon);
  add_row("Odin", odin.reprograms);

  common::Table table({"scheme", "reprograms / 1e8 s",
                       "stuck after horizon (ppm)", "unleveled life (years)",
                       "leveled life (years)", "extension"});
  for (const SchemeRow& row : rows)
    table.add_row({row.label, common::Table::integer(row.reprograms),
                   common::Table::num(row.stuck_ppm, 4),
                   years(row.life_unleveled_s), years(row.life_leveled_s),
                   common::Table::num(row.extension(), 3) + "x"});
  common::print_table(
      "VGG11/CIFAR-10: Weibull wear (eta = 2e5 campaigns, beta = 1.8), "
      "leveled arm rotates over 128+32 rows",
      table);

  // Spare-pool sweep on the Odin cadence: the extension is set by the pool
  // (absorption + rotation spread), not by the reprogram count, so one
  // cadence is enough to chart the knob.
  common::Table sweep({"spare rows", "leveled life (years)", "extension"});
  std::vector<std::pair<int, double>> sweep_rows;
  for (int spares : {8, 16, 32, 64}) {
    const double life = endurance.leveled_lifetime_seconds(
        static_cast<double>(odin.reprograms), horizon.t_end_s, kArrayRows,
        spares, kRowCells);
    sweep_rows.emplace_back(spares, life);
    sweep.add_row({common::Table::integer(spares), years(life),
                   common::Table::num(
                       life / rows.back().life_unleveled_s, 3) +
                       "x"});
  }
  common::print_table("Odin cadence: lifetime vs spare-pool size", sweep);

  // Equal-EDP check: the same Odin horizon served against a leveling
  // injector at the default (realistic) endurance must cost exactly what
  // the injector-free walk costs — leveling spends no energy budget.
  reram::FaultScheduleParams leveled_params;
  leveled_params.leveling.enabled = true;
  leveled_params.leveling.spare_rows = kSpareRows;
  reram::FaultInjector leveled_faults(leveled_params, 0x0d1);
  core::OdinController leveled_controller(
      vgg11, nonideal, cost, policy::OuPolicy(ou::OuLevelGrid(128)),
      core::OdinConfig{}, &leveled_faults);
  const auto leveled_odin = core::simulate_odin(leveled_controller, horizon);
  const double edp_ratio = leveled_odin.total_edp() / odin.total_edp();
  std::printf("\n[equal-EDP] leveling on: EDP %.6e J*s, off: %.6e J*s "
              "(ratio %.6f), reprograms %d vs %d\n",
              leveled_odin.total_edp(), odin.total_edp(), edp_ratio,
              leveled_odin.reprograms, odin.reprograms);

  std::printf(
      "\n[shape] lifetime scales inversely with the reprogram cadence: the "
      "16x16 baseline spends ~48x Odin's write budget per horizon, so "
      "Odin's device lasts ~48x longer to the same stuck-cell ceiling. "
      "Leveling compounds on top at identical EDP: a %d-row spare pool "
      "absorbs the Weibull early-failure tail and rotation spreads each "
      "campaign over %d rows, another %.1fx of lifetime for every scheme.\n",
      kSpareRows, kArrayRows + kSpareRows, rows.back().extension());

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"VGG11/CIFAR-10\",\n"
                 "  \"horizon_s\": %.3e,\n"
                 "  \"weibull\": {\"characteristic_cycles\": %.3e, "
                 "\"shape\": %.2f},\n"
                 "  \"array_rows\": %d,\n"
                 "  \"row_cells\": %d,\n"
                 "  \"spare_rows\": %d,\n"
                 "  \"stuck_cell_budget\": 1e-3,\n"
                 "  \"equal_edp\": {\"leveled_edp\": %.6e, "
                 "\"unleveled_edp\": %.6e, \"ratio\": %.9f,\n"
                 "    \"leveled_reprograms\": %d, "
                 "\"unleveled_reprograms\": %d},\n"
                 "  \"schemes\": [\n",
                 horizon.t_end_s,
                 endurance.params().characteristic_cycles,
                 endurance.params().shape, kArrayRows, kRowCells, kSpareRows,
                 leveled_odin.total_edp(), odin.total_edp(), edp_ratio,
                 leveled_odin.reprograms, odin.reprograms);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SchemeRow& row = rows[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"reprograms\": %d, "
                   "\"stuck_ppm\": %.6f, \"unleveled_life_s\": %.6e, "
                   "\"leveled_life_s\": %.6e, \"extension_x\": %.4f}%s\n",
                   row.label.c_str(), row.reprograms, row.stuck_ppm,
                   row.life_unleveled_s, row.life_leveled_s, row.extension(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"spare_row_sweep\": [\n");
    for (std::size_t i = 0; i < sweep_rows.size(); ++i)
      std::fprintf(f,
                   "    {\"spare_rows\": %d, \"leveled_life_s\": %.6e, "
                   "\"extension_x\": %.4f}%s\n",
                   sweep_rows[i].first, sweep_rows[i].second,
                   sweep_rows[i].second / rows.back().life_unleveled_s,
                   i + 1 < sweep_rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s\n", json_path);
  }
  return 0;
}
