// Calibration robustness — DESIGN.md §4 fixes three constants the paper
// under-determines (drift exponent v, non-ideality threshold eta, cell
// write-verify energy). This bench sweeps each around its calibrated value
// and reports Odin's EDP advantage over the 16x16 baseline: the headline
// conclusion must not hinge on the exact calibration point.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace odin;

namespace {

struct Outcome {
  double advantage;
  int base_reprograms;
  int odin_reprograms;
};

Outcome evaluate(const core::Setup& setup, const ou::MappedModel& model) {
  const ou::NonIdealityModel nonideal = setup.make_nonideality();
  const ou::OuCostModel cost = setup.make_cost();
  const core::HorizonConfig horizon{.runs = 300};
  core::OdinController controller(model, nonideal, cost,
                                  policy::OuPolicy(ou::OuLevelGrid(128)));
  const auto odin = core::simulate_odin(controller, horizon);
  const auto base =
      core::simulate_homogeneous(model, nonideal, cost, {16, 16}, horizon);
  return {base.total_edp() / odin.total_edp(), base.reprograms,
          odin.reprograms};
}

}  // namespace

int main() {
  bench::banner("Sensitivity: calibrated constants vs the headline result");
  const core::Setup nominal = bench::default_setup();
  const ou::MappedModel resnet18 =
      nominal.make_mapped(dnn::make_resnet18(data::DatasetKind::kCifar10));

  {
    common::Table table({"drift exponent v", "16x16 reprograms",
                         "Odin reprograms", "Odin EDP advantage"});
    for (double v : {0.0015, 0.0019, 0.00213, 0.0024, 0.0028}) {
      core::Setup s = nominal;
      s.device.drift_coefficient = v;
      const Outcome o = evaluate(s, resnet18);
      table.add_row({common::Table::num(v, 4),
                     common::Table::integer(o.base_reprograms),
                     common::Table::integer(o.odin_reprograms),
                     common::Table::num(o.advantage, 3)});
    }
    common::print_table("sweep v (calibrated 0.00213)", table);
  }
  {
    common::Table table({"eta (total NF budget)", "16x16 reprograms",
                         "Odin reprograms", "Odin EDP advantage"});
    for (double eta : {0.030, 0.035, 0.040, 0.045, 0.050}) {
      core::Setup s = nominal;
      s.nonideality_params.eta_total = eta;
      const Outcome o = evaluate(s, resnet18);
      table.add_row({common::Table::num(eta, 3),
                     common::Table::integer(o.base_reprograms),
                     common::Table::integer(o.odin_reprograms),
                     common::Table::num(o.advantage, 3)});
    }
    common::print_table("sweep eta (calibrated 0.04)", table);
  }
  {
    common::Table table({"write energy (pJ/cell)", "16x16 reprograms",
                         "Odin reprograms", "Odin EDP advantage"});
    for (double pj : {300.0, 600.0, 900.0, 1350.0, 1800.0}) {
      core::Setup s = nominal;
      s.device.write_energy_per_cell_j = pj * 1e-12;
      const Outcome o = evaluate(s, resnet18);
      table.add_row({common::Table::num(pj, 4),
                     common::Table::integer(o.base_reprograms),
                     common::Table::integer(o.odin_reprograms),
                     common::Table::num(o.advantage, 3)});
    }
    common::print_table("sweep write-verify energy (calibrated 900 pJ)",
                        table);
  }
  std::printf("\n[shape] the advantage tracks the baseline's reprogramming "
              "burden: wherever drift threatens a static configuration at "
              "all, Odin wins (2-7.5x); at the benign extremes where nobody "
              "ever reprograms, Odin converges to near-parity (~0.96x) — "
              "the small residual is the price of the accuracy-protecting "
              "early-layer constraints, which the EDP metric does not "
              "credit. The paper's premise (drift matters) is exactly the "
              "regime where its conclusion holds.\n");
  return 0;
}
